"""The congested clique simulator.

``CongestedClique`` provides the communication primitives the paper's
algorithms are written against, with every primitive metering its cost in
synchronous rounds under the model's bandwidth constraint (one ``O(log n)``
bit word per ordered node pair per round):

* :meth:`CongestedClique.broadcast` -- every node sends the same words to all
  others; ``w`` words cost ``max(w)`` rounds.
* :meth:`CongestedClique.send` -- direct point-to-point exchange; costs the
  maximum per-pair word count.
* :meth:`CongestedClique.route` -- Lenzen-routed exchange [46]; costs
  ``2 * ceil(L / n)`` rounds for maximum per-node load ``L``.  In
  ``ScheduleMode.EXACT`` the full relay schedule is materialised and
  validated; in ``ScheduleMode.FAST`` the closed form is charged.
* :meth:`CongestedClique.transpose` -- the classic one-round transpose: node
  ``v`` sends entry ``u`` of its row to node ``u``.
* :meth:`CongestedClique.allgather_records` -- the "learn everything"
  primitive of Dolev et al. [24]: replicate ``R`` fixed-width records to all
  nodes in ``O(R / n)`` rounds.

Each exchange primitive also has an **array-native fast path** --
:meth:`CongestedClique.broadcast_rows`, :meth:`CongestedClique.route_array`
(and its planned-delivery variant :meth:`CongestedClique.route_array_take`,
which gathers inboxes by a precomputed index vector into a caller-owned
buffer -- what the arena-backed engine sessions use),
:meth:`CongestedClique.send_array`, :meth:`CongestedClique.transpose_array`,
the block all-to-alls :meth:`CongestedClique.scatter_blocks` /
:meth:`CongestedClique.gather_blocks` and the record replication
:meth:`CongestedClique.allgather_rows` -- that moves whole ``int64``
row-blocks as single NumPy arrays with vectorised load accounting instead
of per-payload Python tuples.  The fast path charges bit-identical round
counts to the tuple path for the same logical exchange; it exists purely to
make the simulator's wall-clock scale (the hot matmul engines are written
against it).

Algorithms written on top keep **node-local state in per-node containers**
(lists indexed by node id) and only exchange data through these primitives;
that discipline is what makes the simulated round counts meaningful.
"""

from __future__ import annotations

import math
from enum import Enum
from typing import Any, Sequence

import numpy as np

from repro.clique.accounting import (
    CostMeter,
    CostObserver,
    MeterStack,
    PhaseCost,
    PhaseTraffic,
)
from repro.clique.executor import SERIAL_EXECUTOR, LocalExecutor
from repro.clique.messages import (
    block_widths,
    default_word_bits,
    validate_outboxes,
)
from repro.clique.routing import (
    ArrayInbox,
    FlatInboxes,
    Outboxes,
    analyze,
    analyze_array,
    deliver,
    deliver_array,
    deliver_array_flat,
    enforce_load_bound,
    flatten_array_batch,
)
from repro.clique.scheduling import (
    broadcast_rounds,
    direct_rounds,
    relay_rounds_fast,
    relay_schedule,
)
from repro.errors import CliqueModelError, LoadBoundExceededError


class ScheduleMode(Enum):
    """How routed exchanges are scheduled.

    FAST charges the analytic ``2 * ceil(L / n)`` rounds; EXACT materialises
    the Koenig-coloured relay schedule, validates it against the model, and
    charges its emergent length.  EXACT exists to certify FAST (see the
    scheduling tests); it is slower and meant for small instances.
    """

    FAST = "fast"
    EXACT = "exact"


class CongestedClique:
    """A metered simulation of an ``n``-node congested clique.

    Args:
        n: number of nodes (node ids are ``0 .. n-1``).
        word_bits: message word size in bits; defaults to
            ``max(16, 2 ceil(log2 n))`` -- the model's ``Theta(log n)``.
        mode: schedule mode for :meth:`route` (FAST or EXACT).
        executor: the :class:`~repro.clique.executor.LocalExecutor` engines
            run their per-node block products on; defaults to the serial
            in-process backend.  Executors never touch the meter, so the
            backend choice cannot change round charges.

    Attributes:
        meter: the :class:`~repro.clique.accounting.CostMeter` accumulating
            this clique's communication costs (observer #0 of ``meters``).
        meters: the :class:`~repro.clique.accounting.MeterStack` every
            primitive charges through; register further observers (e.g. a
            :mod:`repro.netsim` transport meter, via
            :meth:`attach_cost_model`) to ride along without perturbing
            the primary bill.
        transport: the attached transport cost model, or ``None``.
    """

    def __init__(
        self,
        n: int,
        *,
        word_bits: int | None = None,
        mode: ScheduleMode = ScheduleMode.FAST,
        executor: "LocalExecutor | None" = None,
    ) -> None:
        if n < 2:
            raise CliqueModelError(f"a congested clique needs >= 2 nodes, got {n}")
        self.n = n
        self.word_bits = word_bits if word_bits is not None else default_word_bits(n)
        if self.word_bits < 1:
            raise CliqueModelError(f"word size must be positive, got {self.word_bits}")
        self.mode = mode
        self.meter = CostMeter()
        self.meters = MeterStack(self.meter)
        self.transport: CostObserver | None = None
        self.executor = executor if executor is not None else SERIAL_EXECUTOR

    def attach_cost_model(self, model) -> CostObserver:
        """Register a transport cost model as a charge observer.

        ``model`` is either a ready observer (anything with an
        ``observe(cost, traffic)`` method, e.g. a
        :class:`repro.netsim.TransportMeter`) or a spec carrying a
        ``build(n, word_bits)`` factory (e.g.
        :class:`repro.netsim.CostModelSpec`) -- the factory form lets
        callers hand a topology *family* to :func:`repro.engine.make_clique`
        before the padded clique size is known.  The observer is purely
        observational: values, rounds, words and per-phase meters are
        bit-identical with or without it (property-tested).  Returns the
        attached observer, also kept as ``self.transport``.
        """
        build = getattr(model, "build", None)
        if callable(build) and not callable(getattr(model, "observe", None)):
            model = build(self.n, self.word_bits)
        bind = getattr(model, "bind", None)
        if callable(bind):
            bind(self.n, self.word_bits)
        self.meters.add_observer(model)
        self.transport = model
        # Shard-placement hint: align the sharded executor's node ranges
        # to the topology's locality groups (fat-tree pods).  A pure
        # partitioning choice -- never changes values or charges.
        group = getattr(getattr(model, "topology", None), "group_size", None)
        if group is not None and self.executor.shards > 1:
            self.executor.placement_group = int(group)
        return model

    # ------------------------------------------------------------------ #
    # Primitives
    # ------------------------------------------------------------------ #

    def broadcast(
        self,
        payloads: Sequence[Any],
        *,
        words: int | Sequence[int] = 1,
        phase: str = "broadcast",
    ) -> list[list[Any]]:
        """Every node sends its payload to all other nodes.

        Args:
            payloads: ``payloads[v]`` is the object node ``v`` broadcasts.
            words: width of each node's payload in words (scalar or per-node).
            phase: label for the cost meter.

        Returns:
            ``received`` with ``received[u][v] = payloads[v]`` for every pair.
            Payload objects are shared, not copied; receivers must not mutate
            them (standard simulator discipline).
        """
        n = self.n
        if len(payloads) != n:
            raise CliqueModelError(f"expected {n} payloads, got {len(payloads)}")
        if isinstance(words, int):
            widths = [words] * n
        else:
            widths = list(words)
            if len(widths) != n:
                raise CliqueModelError("per-node word widths must have length n")
        if any(w < 0 for w in widths):
            raise CliqueModelError("negative broadcast width")
        self._charge_broadcast(widths, phase)
        shared = list(payloads)
        return [shared[:] for _ in range(n)]

    def _broadcast_cost(self, widths: list[int], phase: str) -> PhaseCost:
        """The :class:`PhaseCost` of one all-to-all broadcast (not charged).

        Shared by the tuple and array broadcast paths so both charge
        bit-identical costs for identical widths; exposed separately from
        :meth:`_charge_broadcast` so the encoded collectives
        (:mod:`repro.faults`) can account the same exchange on two meters.
        """
        n = self.n
        return PhaseCost(
            phase=phase,
            primitive="broadcast",
            rounds=broadcast_rounds(widths),
            words=sum(w * (n - 1) for w in widths),
            payloads=n,
            max_send_words=max(w * (n - 1) for w in widths),
            max_recv_words=sum(widths) - min(widths),
        )

    def _charge_broadcast(self, widths: list[int], phase: str) -> None:
        """Meter one all-to-all broadcast of per-node ``widths`` words."""
        self.meters.charge(
            self._broadcast_cost(widths, phase), self._broadcast_traffic(widths)
        )

    # ------------------------------------------------------------------ #
    # Routing metadata for transport observers
    # ------------------------------------------------------------------ #
    #
    # When (and only when) a traffic-consuming observer is registered on
    # the meter stack, every charge also carries a PhaseTraffic record with
    # the exchange's actual per-piece src/dst/width vectors -- the routing
    # structure the flattened PhaseCost aggregates throw away.  The
    # builders below are pure reads of already-materialised arrays (plus,
    # in EXACT mode, a lookup of the memoised relay schedule), so the
    # abstract charge path is untouched.

    def _broadcast_traffic(self, widths: Sequence[int]) -> PhaseTraffic | None:
        if not self.meters.wants_traffic:
            return None
        return PhaseTraffic(
            n=self.n,
            kind="broadcast",
            src=np.arange(self.n, dtype=np.int64),
            dst=None,
            widths=np.asarray(widths, dtype=np.int64),
        )

    def _batch_traffic(
        self, batch, kind: str, *, relayed: bool
    ) -> PhaseTraffic | None:
        if not self.meters.wants_traffic:
            return None
        schedule = None
        if relayed and self.mode is ScheduleMode.EXACT:
            profile = analyze_array(batch, with_demand=True)
            if profile.demand:
                schedule = self._traffic_schedule(profile.demand)
        return PhaseTraffic(
            n=self.n,
            kind=kind,
            src=batch.src,
            dst=batch.dst,
            widths=batch.widths,
            relayed=relayed,
            schedule=schedule,
        )

    def _traffic_schedule(self, demand):
        """The relay schedule a transport observer should price.

        Charged rounds always come from the canonical (identity-assigned)
        schedule; when the attached cost model carries a topology, the
        *priced* schedule instead uses the cost-aware relay-slot
        assignment -- a round-equivalent choice (same matchings, same
        batches, same ``2 * ceil(matchings / n)`` rounds) with shorter
        modelled relay legs.  Both lookups are memoised per demand.
        """
        topology = getattr(self.transport, "topology", None)
        return relay_schedule(demand, self.n, topology)

    def _demand_traffic(
        self, demand, kind: str, *, relayed: bool, schedule=None
    ) -> PhaseTraffic | None:
        if not self.meters.wants_traffic:
            return None
        items = sorted(demand.items())
        count = len(items)
        return PhaseTraffic(
            n=self.n,
            kind=kind,
            src=np.fromiter((u for (u, _v), _c in items), np.int64, count),
            dst=np.fromiter((v for (_u, v), _c in items), np.int64, count),
            widths=np.fromiter((c for _pair, c in items), np.int64, count),
            relayed=relayed,
            schedule=schedule,
        )

    def send(
        self,
        outboxes: Outboxes,
        *,
        phase: str = "send",
        expect_max_pair: int | None = None,
    ) -> list[list[tuple[int, Any]]]:
        """Direct exchange: every message travels on its own link.

        Rounds charged: the maximum, over ordered pairs, of the words that
        pair must carry.  Use when per-pair traffic is small (e.g. the
        transpose, or the O(1)-round steps of the 4-cycle algorithm); use
        :meth:`route` when traffic is concentrated and relaying pays off.

        Args:
            outboxes: ``outboxes[v]`` lists ``(dst, payload, words)`` triples.
            expect_max_pair: optional asserted bound on per-pair words; a
                violation raises
                :class:`~repro.errors.LoadBoundExceededError`.
        """
        self._validate(outboxes)
        profile = analyze(outboxes, self.n)
        rounds = direct_rounds(profile.demand)
        if expect_max_pair is not None and rounds > expect_max_pair:
            raise LoadBoundExceededError(
                f"per-pair traffic of {rounds} words exceeds the asserted "
                f"bound {expect_max_pair}"
            )
        self.meters.charge(
            PhaseCost(
                phase=phase,
                primitive="send",
                rounds=rounds,
                words=profile.total_words,
                payloads=profile.payloads,
                max_send_words=profile.max_send,
                max_recv_words=profile.max_recv,
            ),
            self._demand_traffic(profile.demand, "send", relayed=False),
        )
        return deliver(outboxes, self.n)

    def route(
        self,
        outboxes: Outboxes,
        *,
        phase: str = "route",
        expect_max_load: int | None = None,
    ) -> list[list[tuple[int, Any]]]:
        """Lenzen-routed exchange (the paper's workhorse primitive).

        Rounds charged: ``2 * ceil(L / n)`` where ``L`` is the maximum
        per-node send or receive load in words (FAST mode), or the emergent
        length of a validated relay schedule (EXACT mode).

        Args:
            outboxes: ``outboxes[v]`` lists ``(dst, payload, words)`` triples.
            expect_max_load: optional asserted per-node load bound from the
                calling algorithm's analysis.
        """
        self._validate(outboxes)
        profile = analyze(outboxes, self.n)
        enforce_load_bound(profile, expect_max_load)
        schedule = None
        if self.mode is ScheduleMode.EXACT and profile.demand:
            schedule = relay_schedule(profile.demand, self.n)
            rounds = schedule.rounds
        else:
            rounds = relay_rounds_fast(profile.max_load, self.n)
        self.meters.charge(
            PhaseCost(
                phase=phase,
                primitive="route",
                rounds=rounds,
                words=profile.total_words,
                payloads=profile.payloads,
                max_send_words=profile.max_send,
                max_recv_words=profile.max_recv,
            ),
            self._demand_traffic(
                profile.demand,
                "route",
                relayed=True,
                schedule=(
                    self._traffic_schedule(profile.demand)
                    if schedule is not None
                    else None
                ),
            ),
        )
        return deliver(outboxes, self.n)

    # ------------------------------------------------------------------ #
    # Array-native fast path
    # ------------------------------------------------------------------ #
    #
    # These primitives move whole int64 row-blocks as single NumPy arrays
    # with vectorised load accounting, instead of per-payload Python tuples.
    # They charge *bit-identical* costs to the tuple primitives for the
    # same logical exchange (same widths, same phases -- equivalence is
    # enforced by the test suite), so algorithms can switch freely.

    def broadcast_rows(
        self,
        rows: np.ndarray,
        *,
        widths: Sequence[int] | None = None,
        phase: str = "broadcast",
    ) -> np.ndarray:
        """Array-native broadcast: node ``v`` broadcasts ``rows[v]``.

        Args:
            rows: ``(n, ...)`` int64 array; node ``v`` owns slice ``rows[v]``.
            widths: per-node word widths; defaults to the honest per-row
                width (``row.size * words_for_value(max_abs(row))``),
                exactly what the tuple path charges per row.

        Returns:
            The full ``rows`` array -- every node's (shared) replica.  As
            with :meth:`broadcast`, receivers must not mutate it.
        """
        rows = np.ascontiguousarray(np.asarray(rows, dtype=np.int64))
        if rows.shape[0] != self.n:
            raise CliqueModelError(
                f"expected {self.n} broadcast rows, got {rows.shape[0]}"
            )
        if widths is None:
            width_list = [
                int(w) for w in block_widths(rows.reshape(self.n, -1), self.word_bits)
            ]
        else:
            width_list = [int(w) for w in widths]
            if len(width_list) != self.n:
                raise CliqueModelError("per-node word widths must have length n")
            if any(w < 0 for w in width_list):
                raise CliqueModelError("negative broadcast width")
        return self._deliver_broadcast_rows(rows, width_list, phase)

    def _deliver_broadcast_rows(
        self, rows: np.ndarray, width_list: list[int], phase: str
    ) -> np.ndarray:
        """Charge and deliver one validated row broadcast (override seam).

        The fault-free model charges the honest widths and hands back the
        shared replica through the (identity) :meth:`_tamper_broadcast`
        seam; the robust collectives override this to run the replication-
        coded variant with the same validated inputs.
        """
        self._charge_broadcast(width_list, phase)
        return self._tamper_broadcast(rows, phase)

    def route_array(
        self,
        dests: Sequence[np.ndarray],
        blocks: Sequence[np.ndarray],
        *,
        widths: Sequence[np.ndarray] | None = None,
        tags: Sequence[np.ndarray] | None = None,
        phase: str = "route",
        expect_max_load: int | None = None,
        flat: bool = False,
    ) -> list[ArrayInbox] | FlatInboxes:
        """Array-native Lenzen-routed exchange.

        The batched counterpart of :meth:`route`: node ``v`` ships the
        equally-shaped pieces ``blocks[v][i]`` to nodes ``dests[v][i]``.
        Load accounting (``np.bincount``-style scatter-adds over destination
        ids) and delivery (one stable sort) are vectorised over the whole
        exchange.

        Args:
            dests: per node, a ``(p_v,)`` vector of destination ids.
            blocks: per node, a ``(p_v, *piece_shape)`` int64 stack of
                pieces; the piece shape must be uniform across the exchange.
            widths: per node, ``(p_v,)`` words charged per piece; defaults
                to the honest per-piece width
                (:func:`repro.clique.messages.block_widths`).
            tags: optional per node ``(p_v,)`` metadata ints delivered with
                each piece (uncharged, like tuple-path headers).
            expect_max_load: asserted per-node load bound, as in
                :meth:`route`.
            flat: return one destination-sorted
                :class:`~repro.clique.routing.FlatInboxes` batch instead of
                a per-node inbox list (same contents, no per-node
                restacking; what the engine hot paths consume).

        Returns:
            Per destination node, an
            :class:`~repro.clique.routing.ArrayInbox` with pieces ordered by
            sender id then emission order -- or the equivalent
            :class:`~repro.clique.routing.FlatInboxes` when ``flat`` is set.
        """
        batch = self._flatten_checked(dests, blocks, widths, tags)
        self._charge_routed_batch(batch, phase, expect_max_load)
        batch = self._tamper_batch(batch, phase)
        return deliver_array_flat(batch) if flat else deliver_array(batch)

    def route_array_take(
        self,
        dests: Sequence[np.ndarray],
        blocks: Sequence[np.ndarray],
        *,
        take: np.ndarray,
        widths: Sequence[np.ndarray] | None = None,
        out: np.ndarray | None = None,
        owners: np.ndarray | None = None,
        phase: str = "route",
        expect_max_load: int | None = None,
    ) -> np.ndarray:
        """:meth:`route_array` with a *planned* delivery gather.

        Identical batch layout and **bit-identical round/load charges** to
        :meth:`route_array` (the two share the accounting path); only the
        delivery differs: instead of sorting the batch by destination, the
        received pieces are gathered by the precomputed flat index vector
        ``take`` -- one fused ``np.take`` into ``out`` (typically an
        :class:`~repro.clique.arena.ExchangeArena` buffer), no per-exchange
        ``argsort`` and no fresh concatenated inbox array.

        ``take`` must compose the exchange's delivery permutation with a
        receiver-*local* reordering only: entry ``g`` of the result is piece
        ``take[g]`` of the flattened batch, and every gathered piece must be
        addressed to the node that consumes that output slot (receivers can
        only read their own inboxes).  The engine plans satisfy this by
        construction -- their ``take`` vectors are pure functions of the
        static destination arrays -- and the equivalence tests pin the
        gathered contents against :meth:`route_array`'s inboxes.  Pass
        ``owners`` (the node id consuming each output slot) to have the
        model *enforce* receiver locality: a gather whose piece is
        addressed elsewhere raises ``CliqueModelError`` instead of leaking
        another node's traffic -- the engine plans ship their static owner
        vectors, so every hot-path exchange is checked on every call.
        """
        batch = self._flatten_checked(dests, blocks, widths, None)
        # Validate the gather *before* charging: a rejected delivery must
        # not leave phantom rounds on the meter (route_array's only failure
        # path, flattening, raises before charging too).
        take = np.asarray(take, dtype=np.intp)
        if take.size and (
            int(take.min()) < 0 or int(take.max()) >= batch.blocks.shape[0]
        ):
            raise CliqueModelError("route_array_take: take index out of range")
        if owners is not None and not np.array_equal(batch.dst[take], owners):
            raise CliqueModelError(
                "route_array_take: gather reads pieces addressed to another "
                "node (take/owners disagree with the batch destinations)"
            )
        self._charge_routed_batch(batch, phase, expect_max_load)
        batch = self._tamper_batch(batch, phase)
        return np.take(batch.blocks, take, axis=0, out=out)

    def _flatten_checked(
        self,
        dests: Sequence[np.ndarray],
        blocks: Sequence[np.ndarray],
        widths: Sequence[np.ndarray] | None,
        tags: Sequence[np.ndarray] | None,
    ):
        try:
            if widths is None:
                widths = [
                    block_widths(np.asarray(b, dtype=np.int64), self.word_bits)
                    for b in blocks
                ]
            return flatten_array_batch(dests, blocks, widths, tags, self.n)
        except ValueError as exc:
            raise CliqueModelError(str(exc)) from exc

    def _routed_batch_cost(
        self, batch, phase: str, expect_max_load: int | None
    ) -> PhaseCost:
        """The :class:`PhaseCost` of one routed array batch (not charged).

        Shared by both delivery styles; exposed separately from
        :meth:`_charge_routed_batch` so the encoded collectives can account
        the same exchange on two meters.
        """
        exact = self.mode is ScheduleMode.EXACT
        profile = analyze_array(batch, with_demand=exact)
        enforce_load_bound(profile, expect_max_load)
        if exact and profile.demand:
            rounds = relay_schedule(profile.demand, self.n).rounds
        else:
            rounds = relay_rounds_fast(profile.max_load, self.n)
        return PhaseCost(
            phase=phase,
            primitive="route",
            rounds=rounds,
            words=profile.total_words,
            payloads=profile.payloads,
            max_send_words=profile.max_send,
            max_recv_words=profile.max_recv,
        )

    def _charge_routed_batch(
        self, batch, phase: str, expect_max_load: int | None
    ) -> None:
        """Meter one routed array batch (shared by both delivery styles)."""
        self.meters.charge(
            self._routed_batch_cost(batch, phase, expect_max_load),
            self._batch_traffic(batch, "route", relayed=True),
        )

    # ------------------------------------------------------------------ #
    # Delivery-interception seams (identity in the fault-free model)
    # ------------------------------------------------------------------ #
    #
    # Every array-collective delivery funnels through one of these two
    # hooks *after* its cost is charged.  The base class returns its input
    # unchanged -- same objects, zero copies -- so the fault-free charge
    # path and delivered contents are bit-identical with or without the
    # seams (pinned by the equivalence suite).  The fault-injection layer
    # (:class:`repro.faults.FaultyClique`) overrides them to corrupt
    # in-transit pieces according to a seeded plan.

    def _tamper_batch(self, batch, phase: str):
        """Intercept one flattened routed/direct batch before delivery."""
        return batch

    def _tamper_broadcast(self, rows: np.ndarray, phase: str) -> np.ndarray:
        """Intercept one broadcast row/record stack before delivery."""
        return rows

    def send_array(
        self,
        dests: Sequence[np.ndarray],
        blocks: Sequence[np.ndarray],
        *,
        widths: Sequence[np.ndarray] | None = None,
        tags: Sequence[np.ndarray] | None = None,
        phase: str = "send",
        expect_max_pair: int | None = None,
    ) -> list[ArrayInbox]:
        """Array-native direct exchange (the batched counterpart of :meth:`send`).

        Every piece travels on its own link; the phase costs the maximum,
        over ordered pairs, of the words that pair must carry.  Batch layout
        and defaults are exactly as in :meth:`route_array`.

        Args:
            expect_max_pair: optional asserted bound on per-pair words, as in
                :meth:`send`.
        """
        try:
            if widths is None:
                widths = [
                    block_widths(np.asarray(b, dtype=np.int64), self.word_bits)
                    for b in blocks
                ]
            batch = flatten_array_batch(dests, blocks, widths, tags, self.n)
        except ValueError as exc:
            raise CliqueModelError(str(exc)) from exc
        self.meters.charge(
            self._direct_batch_cost(batch, phase, expect_max_pair),
            self._batch_traffic(batch, "send", relayed=False),
        )
        batch = self._tamper_batch(batch, phase)
        return deliver_array(batch)

    def _direct_batch_cost(
        self, batch, phase: str, expect_max_pair: int | None
    ) -> PhaseCost:
        """The :class:`PhaseCost` of one direct array batch (not charged)."""
        profile = analyze_array(batch, with_demand=True)
        rounds = direct_rounds(profile.demand)
        if expect_max_pair is not None and rounds > expect_max_pair:
            raise LoadBoundExceededError(
                f"per-pair traffic of {rounds} words exceeds the asserted "
                f"bound {expect_max_pair}"
            )
        return PhaseCost(
            phase=phase,
            primitive="send",
            rounds=rounds,
            words=profile.total_words,
            payloads=profile.payloads,
            max_send_words=profile.max_send,
            max_recv_words=profile.max_recv,
        )

    def scatter_blocks(
        self,
        blocks: np.ndarray,
        *,
        widths: Sequence[np.ndarray] | None = None,
        phase: str = "scatter",
        expect_max_load: int | None = None,
    ) -> np.ndarray:
        """Block all-to-all: node ``v`` ships piece ``blocks[v, j]`` to node ``j``.

        The dense personalised exchange behind the bilinear engine's
        farm-out steps: every node addresses the same ``k <= n`` receivers,
        so destinations need not be materialised per piece and the inboxes
        come back as one dense array.

        Args:
            blocks: ``(n, k, *piece_shape)`` int64 stack; ``blocks[v, j]``
                is the piece node ``v`` sends to node ``j``.
            widths: per node, ``(k,)`` words charged per piece; defaults to
                the honest per-piece width.
            expect_max_load: asserted per-node load bound, as in
                :meth:`route`.

        Returns:
            ``(k, n, *piece_shape)`` with ``out[j, v] = blocks[v, j]`` --
            receiver ``j``'s pieces indexed by sender.
        """
        blocks = np.ascontiguousarray(np.asarray(blocks, dtype=np.int64))
        if blocks.ndim < 2 or blocks.shape[0] != self.n:
            raise CliqueModelError(
                f"scatter_blocks expects an ({self.n}, k, ...) block stack"
            )
        k = blocks.shape[1]
        if not 1 <= k <= self.n:
            raise CliqueModelError(
                f"scatter_blocks needs 1 <= k <= n receivers, got k={k}"
            )
        dest_row = np.arange(k, dtype=np.int64)
        inboxes = self.route_array(
            [dest_row] * self.n,
            list(blocks),
            widths=widths,
            phase=phase,
            expect_max_load=expect_max_load,
        )
        # Every sender addresses receiver j exactly once, so inbox j holds
        # one piece per sender in ascending sender order.
        return np.stack([inboxes[j].blocks for j in range(k)])

    def gather_blocks(
        self,
        blocks: np.ndarray,
        *,
        widths: Sequence[np.ndarray] | None = None,
        phase: str = "gather",
        expect_max_load: int | None = None,
    ) -> np.ndarray:
        """Inverse block all-to-all: node ``v < k`` ships ``blocks[v, u]`` to ``u``.

        The collection half of a farm-out: ``k <= n`` worker nodes each hold
        one piece for every node, and every node ends up with its ``k``
        pieces indexed by worker.

        Args:
            blocks: ``(k, n, *piece_shape)`` int64 stack; ``blocks[v, u]``
                is the piece worker ``v`` sends to node ``u``.  Nodes
                ``>= k`` send nothing.
            widths: per worker, ``(n,)`` words charged per piece; defaults
                to the honest per-piece width.
            expect_max_load: asserted per-node load bound, as in
                :meth:`route`.

        Returns:
            ``(n, k, *piece_shape)`` with ``out[u, v] = blocks[v, u]``.
        """
        blocks = np.ascontiguousarray(np.asarray(blocks, dtype=np.int64))
        if blocks.ndim < 2 or blocks.shape[1] != self.n:
            raise CliqueModelError(
                f"gather_blocks expects a (k, {self.n}, ...) block stack"
            )
        k = blocks.shape[0]
        if not 1 <= k <= self.n:
            raise CliqueModelError(
                f"gather_blocks needs 1 <= k <= n senders, got k={k}"
            )
        piece_shape = blocks.shape[2:]
        dest_row = np.arange(self.n, dtype=np.int64)
        empty_dests = np.zeros(0, dtype=np.int64)
        empty_block = np.zeros((0,) + piece_shape, dtype=np.int64)
        dests = [dest_row] * k + [empty_dests] * (self.n - k)
        block_list = list(blocks) + [empty_block] * (self.n - k)
        width_list: Sequence[np.ndarray] | None = None
        if widths is not None:
            if len(widths) != k:
                raise CliqueModelError(
                    f"gather_blocks expects {k} per-sender width vectors"
                )
            width_list = list(widths) + [empty_dests] * (self.n - k)
        inboxes = self.route_array(
            dests,
            block_list,
            widths=width_list,
            phase=phase,
            expect_max_load=expect_max_load,
        )
        # Every node receives exactly one piece from each sender < k, in
        # ascending sender order.
        return np.stack([inboxes[u].blocks for u in range(self.n)])

    def allgather_rows(
        self,
        rows_per_node: Sequence[np.ndarray],
        *,
        words_per_record: int = 1,
        phase: str = "allgather",
    ) -> np.ndarray:
        """Array-native :meth:`allgather_records` for fixed-width int records.

        Same three-phase structure (broadcast counts, route to balanced
        holders, holders broadcast) and bit-identical charges, but records
        are rows of one ``(R, record_width)`` int64 array instead of Python
        objects.

        Args:
            rows_per_node: per node, an ``(r_v, record_width)`` int64 array
                of records (``record_width`` uniform across nodes).
            words_per_record: words charged per record, as in
                :meth:`allgather_records`.

        Returns:
            The canonical combined ``(R, record_width)`` record array, in
            the same deterministic order :meth:`allgather_records` produces.
        """
        n = self.n
        if len(rows_per_node) != n:
            raise CliqueModelError(f"expected {n} record arrays")
        rows = [np.asarray(r, dtype=np.int64) for r in rows_per_node]
        record_widths = {r.shape[1:] for r in rows}
        if any(r.ndim != 2 for r in rows) or len(record_widths) != 1:
            raise CliqueModelError(
                "allgather_rows expects (r_v, record_width) arrays with a "
                "uniform record width"
            )
        record_width = rows[0].shape[1]
        counts = [int(r.shape[0]) for r in rows]
        self.broadcast(counts, words=1, phase=f"{phase}/counts")
        total = sum(counts)
        if total == 0:
            return np.zeros((0, record_width), dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        dests = [
            (offsets[v] + np.arange(counts[v], dtype=np.int64)) % n
            for v in range(n)
        ]
        widths = [
            np.full(counts[v], words_per_record, dtype=np.int64)
            for v in range(n)
        ]
        inboxes = self.route_array(
            dests, rows, widths=widths, phase=f"{phase}/balance"
        )
        held = [inboxes[v].blocks for v in range(n)]
        per_holder = math.ceil(total / n)
        bcast_widths = [
            min(h.shape[0], per_holder) * words_per_record for h in held
        ]
        if any(h.shape[0] > per_holder for h in held):
            raise AssertionError("round-robin placement exceeded ceil(R/n)")
        return self._broadcast_held(held, bcast_widths, f"{phase}/broadcast")

    def _broadcast_held(
        self,
        held: list[np.ndarray],
        bcast_widths: list[int],
        phase: str,
    ) -> np.ndarray:
        """Charge and deliver the holders' broadcast of an allgather.

        The override seam for the final phase of :meth:`allgather_rows`:
        the fault-free model charges the per-holder widths and concatenates
        the held records (through the identity :meth:`_tamper_broadcast`);
        the robust collectives override it with the replication-coded
        variant.
        """
        self._charge_broadcast(bcast_widths, phase)
        return self._tamper_broadcast(np.concatenate(held, axis=0), phase)

    def transpose_array(
        self,
        matrix: np.ndarray,
        *,
        words_per_entry: int = 1,
        phase: str = "transpose",
    ) -> np.ndarray:
        """Array-native one-round transpose of an ``(n, n)`` int64 matrix.

        Node ``v`` sends ``matrix[v, u]`` to node ``u``; node ``u`` ends up
        holding column ``u``, i.e. row ``u`` of the transpose.  Charges the
        same cost as :meth:`transpose` (every ordered pair carries exactly
        ``words_per_entry`` words, so ``words_per_entry`` rounds).
        """
        matrix = np.asarray(matrix, dtype=np.int64)
        n = self.n
        if matrix.shape != (n, n):
            raise CliqueModelError("transpose_array expects an n x n matrix")
        if words_per_entry < 1:
            raise CliqueModelError(
                f"non-positive word count {words_per_entry}"
            )
        traffic = None
        if self.meters.wants_traffic:
            u, v = np.divmod(np.arange(n * n, dtype=np.int64), n)
            off = u != v
            traffic = PhaseTraffic(
                n=n,
                kind="send",
                src=u[off],
                dst=v[off],
                widths=np.full(n * (n - 1), words_per_entry, dtype=np.int64),
            )
        self.meters.charge(
            PhaseCost(
                phase=phase,
                primitive="send",
                rounds=words_per_entry,
                words=words_per_entry * n * (n - 1),
                payloads=n * n,
                max_send_words=(n - 1) * words_per_entry,
                max_recv_words=(n - 1) * words_per_entry,
            ),
            traffic,
        )
        return matrix.T.copy()

    def transpose(
        self,
        row_values: Sequence[Sequence[Any]],
        *,
        words_per_entry: int = 1,
        phase: str = "transpose",
    ) -> list[list[Any]]:
        """Matrix transpose: node ``v`` sends ``row_values[v][u]`` to node ``u``.

        Costs ``words_per_entry`` rounds (each ordered pair carries exactly
        one entry).  Returns ``columns`` with ``columns[u][v] =
        row_values[v][u]``.
        """
        n = self.n
        if len(row_values) != n or any(len(r) != n for r in row_values):
            raise CliqueModelError("transpose expects an n x n value grid")
        outboxes: Outboxes = [
            [(u, row_values[v][u], words_per_entry) for u in range(n)]
            for v in range(n)
        ]
        inboxes = self.send(outboxes, phase=phase)
        columns: list[list[Any]] = []
        for u in range(n):
            col = [None] * n
            for src, payload in inboxes[u]:
                col[src] = payload
            columns.append(col)
        return columns

    def allgather_records(
        self,
        records_per_node: Sequence[Sequence[Any]],
        *,
        words_per_record: int = 1,
        phase: str = "allgather",
    ) -> list[Any]:
        """Replicate all records to every node in ``O(R / n)`` rounds.

        This is the "collect full information about the graph structure"
        primitive of Dolev et al. [24] used by the girth algorithm: first the
        per-node record counts are broadcast (so everyone can compute the
        balanced placement), then records are routed to evenly loaded holders
        (round-robin by global index), and finally each holder broadcasts its
        ``<= ceil(R / n)`` records.

        Returns the canonical combined record list (every node's copy is
        identical; a single shared list is returned to avoid ``n``-fold
        memory blow-up in the simulator).
        """
        n = self.n
        if len(records_per_node) != n:
            raise CliqueModelError(f"expected {n} record lists")
        counts = [len(r) for r in records_per_node]
        self.broadcast(counts, words=1, phase=f"{phase}/counts")
        total = sum(counts)
        if total == 0:
            return []
        offsets = [0] * n
        acc = 0
        for v in range(n):
            offsets[v] = acc
            acc += counts[v]
        outboxes: Outboxes = [[] for _ in range(n)]
        for v in range(n):
            for i, record in enumerate(records_per_node[v]):
                holder = (offsets[v] + i) % n
                outboxes[v].append((holder, record, words_per_record))
        inboxes = self.route(outboxes, phase=f"{phase}/balance")
        held: list[list[Any]] = [[rec for _src, rec in inboxes[v]] for v in range(n)]
        # Include records a node kept for itself (self-addressed are delivered
        # too by `deliver`, so `held` is already complete).
        per_holder = math.ceil(total / n)
        widths = [min(len(h), per_holder) * words_per_record for h in held]
        if any(len(h) > per_holder for h in held):
            raise AssertionError("round-robin placement exceeded ceil(R/n)")
        self.broadcast(held, words=widths, phase=f"{phase}/broadcast")
        combined: list[Any] = []
        for h in held:
            combined.extend(h)
        return combined

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def _validate(self, outboxes: Outboxes) -> None:
        try:
            validate_outboxes(outboxes, self.n, allow_self=True)
        except ValueError as exc:
            raise CliqueModelError(str(exc)) from exc

    @property
    def rounds(self) -> int:
        """Total rounds charged on this clique so far."""
        return self.meter.rounds

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CongestedClique(n={self.n}, word_bits={self.word_bits}, "
            f"mode={self.mode.value}, rounds={self.rounds})"
        )


__all__ = ["CongestedClique", "ScheduleMode"]
