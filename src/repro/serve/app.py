"""A thin asyncio TCP/JSON-lines front end over a :class:`QueryEngine`.

Protocol: one JSON object per line.  Requests::

    {"op": "dist", "u": 0, "v": 5}
    {"op": "path", "u": 0, "v": 5}
    {"op": "ecc",  "u": 0}
    {"op": "stats"}

Responses echo an optional ``"id"`` and carry ``"ok": true`` plus the
result (``"dist"`` is ``null`` for unreachable pairs, ``"path"`` the node
list -- empty for unreachable), or ``"ok": false`` with an ``"error"``.

The server's one trick is **micro-batching**: requests arriving within
``window`` seconds are drained into a single batch and answered with one
vectorised gather (:meth:`QueryEngine.dist_batch` /
:meth:`QueryEngine.path_batch`), so a thousand concurrent clients cost a
handful of numpy ops, not a thousand Python lookups.  Pure stdlib: no
dependency beyond ``asyncio`` + ``json``.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

import numpy as np

from repro.constants import INF
from repro.serve.query import QueryEngine, RoutingCycleError


def _json_dist(value: int) -> int | None:
    return None if value >= INF else int(value)


@dataclass
class ServerStats:
    """Batching effectiveness counters, served by the ``stats`` op."""

    requests: int = 0
    batches: int = 0
    largest_batch: int = 0
    by_op: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "by_op": dict(self.by_op),
            "mean_batch": (
                round(self.requests / self.batches, 2) if self.batches else 0.0
            ),
        }


class BatchingServer:
    """Serve one artifact's queries over TCP with windowed batching."""

    def __init__(
        self,
        engine: QueryEngine,
        *,
        window: float = 0.001,
        max_batch: int = 8192,
        max_requests: int | None = None,
    ) -> None:
        self.engine = engine
        self.window = float(window)
        self.max_batch = int(max_batch)
        self.max_requests = max_requests
        self.stats = ServerStats()
        self._queue: asyncio.Queue | None = None
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher: asyncio.Task | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._handlers: set[asyncio.Task] = set()
        #: Set once ``max_requests`` responses have been sent (test/CI hook).
        self.done = asyncio.Event()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._queue = asyncio.Queue()
        self._server = await asyncio.start_server(self._handle, host, port)
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        sock = self._server.sockets[0]
        addr = sock.getsockname()
        return addr[0], addr[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Drop live connections first (their handlers see EOF and return),
        # so no handler task is left to be cancelled mid-await when the
        # event loop tears down.
        for writer in list(self._connections):
            writer.close()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._connections.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._submit(line)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            if task is not None:
                self._handlers.discard(task)

    async def _submit(self, line: bytes) -> dict:
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            return {"ok": False, "error": f"bad JSON: {exc}"}
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        op = request.get("op")
        if op == "stats":
            return {
                "ok": True,
                "id": request.get("id"),
                "stats": self.stats.as_dict(),
            }
        if op not in ("dist", "path", "ecc"):
            return {"ok": False, "id": request.get("id"), "error": f"unknown op {op!r}"}
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        assert self._queue is not None
        await self._queue.put((request, future))
        return await future

    # ------------------------------------------------------------------ #
    # The batching dispatcher
    # ------------------------------------------------------------------ #

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            batch = [first]
            deadline = loop.time() + self.window
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            self._flush(batch)
            if (
                self.max_requests is not None
                and self.stats.requests >= self.max_requests
            ):
                self.done.set()

    def _flush(self, batch: list) -> None:
        """Answer one drained batch with vectorised gathers."""
        self.stats.batches += 1
        self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
        groups: dict[str, list] = {"dist": [], "path": [], "ecc": []}
        for request, future in batch:
            self.stats.requests += 1
            op = request["op"]
            self.stats.by_op[op] = self.stats.by_op.get(op, 0) + 1
            try:
                u = int(request["u"])
                v = int(request.get("v", 0)) if op != "ecc" else 0
                if not 0 <= u < self.engine.n or not 0 <= v < self.engine.n:
                    raise ValueError(
                        f"node out of range [0, {self.engine.n})"
                    )
            except (KeyError, TypeError, ValueError) as exc:
                if not future.done():
                    future.set_result(
                        {"ok": False, "id": request.get("id"), "error": str(exc)}
                    )
                continue
            groups[op].append((request, future, u, v))
        for op, items in groups.items():
            if not items:
                continue
            try:
                self._answer_group(op, items)
            except RoutingCycleError as exc:
                for request, future, _, _ in items:
                    if not future.done():
                        future.set_result(
                            {
                                "ok": False,
                                "id": request.get("id"),
                                "error": str(exc),
                            }
                        )

    def _answer_group(self, op: str, items: list) -> None:
        us = np.array([u for _, _, u, _ in items], dtype=np.int64)
        if op == "dist":
            vs = np.array([v for _, _, _, v in items], dtype=np.int64)
            values = self.engine.dist_batch(us, vs)
            for (request, future, _, _), value in zip(items, values):
                if not future.done():
                    future.set_result(
                        {
                            "ok": True,
                            "id": request.get("id"),
                            "dist": _json_dist(int(value)),
                        }
                    )
        elif op == "path":
            vs = np.array([v for _, _, _, v in items], dtype=np.int64)
            dists = self.engine.dist_batch(us, vs)
            paths = self.engine.path_batch(us, vs)
            for (request, future, _, _), value, path in zip(items, dists, paths):
                if not future.done():
                    future.set_result(
                        {
                            "ok": True,
                            "id": request.get("id"),
                            "dist": _json_dist(int(value)),
                            "path": path,
                        }
                    )
        else:  # ecc
            values = self.engine.ecc_batch(us)
            for (request, future, _, _), value in zip(items, values):
                if not future.done():
                    future.set_result(
                        {
                            "ok": True,
                            "id": request.get("id"),
                            "ecc": _json_dist(int(value)),
                        }
                    )


async def request_line(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    payload: dict,
) -> dict:
    """One client round trip (shared by the load harness and tests)."""
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()
    line = await reader.readline()
    if not line:
        raise ConnectionError("server closed the connection")
    return json.loads(line)


__all__ = ["BatchingServer", "ServerStats", "request_line"]
