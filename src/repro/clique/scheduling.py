"""Communication schedules for the congested clique.

The model constraint is: in one round, each ordered pair of nodes exchanges at
most one word.  Three kinds of schedules are built here.

* **Direct schedules** ship every message straight from source to destination;
  the round count is the maximum, over ordered pairs, of the number of words
  that pair must carry.

* **Relay schedules** implement the routing theorem of Lenzen [46] (and the
  oblivious variant of Dolev et al. [24]) used throughout the paper: if every
  node sends at most ``L`` words and receives at most ``L`` words, all
  messages can be delivered in ``O(L / n)`` rounds.  The construction:

  1. View the messages as a bipartite multigraph (senders vs. receivers, one
     edge per word) with maximum degree ``L``.
  2. Edge-colour it into matchings (Koenig's theorem, via iterated Euler
     splits).
  3. Group the matchings into batches of ``n``.  Within a batch, the matching
     with batch-local index ``i`` is relayed through intermediate node ``i``:
     in the first round of the batch every source forwards its word to the
     intermediate, in the second round the intermediate forwards it to the
     destination.  Because each matching touches every node at most once on
     each side, both rounds respect the one-word-per-pair constraint.

  The batch count is ``ceil(#matchings / n)``, so the schedule length is
  ``2 * ceil(#matchings / n)`` rounds.  The Euler-split colouring pads the
  degree to the next power of two, so the number of matchings is at most
  ``2 L`` -- within a factor two of Koenig's optimum, which only affects the
  constant in front of the paper's ``O(.)`` bounds.  The analytic FAST mode
  charges the un-padded ``2 * ceil(L / n)``.

* **Broadcast schedules** let every node send the same word to all others in
  one round; ``w`` words per node take ``max(w)`` rounds.

Schedules are only *materialised* in ``ScheduleMode.EXACT`` (used by the test
suite to validate the analytic charges); the FAST path uses the closed forms.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.errors import ScheduleValidationError

# A demand maps an ordered node pair (src, dst) to a word count.
Demand = dict[tuple[int, int], int]


def direct_rounds(demand: Demand) -> int:
    """Rounds to ship a demand with no relaying: the max per-pair word count."""
    if not demand:
        return 0
    return max(demand.values())


def relay_rounds_fast(max_load: int, n: int) -> int:
    """Closed-form relay schedule length: ``2 * ceil(L / n)`` rounds.

    ``max_load`` is the maximum over nodes of that node's total sent or
    received words.  This is the round count charged by ``ScheduleMode.FAST``
    and proven achievable by the construction in :func:`relay_schedule`
    (up to the power-of-two padding factor discussed in the module docstring).
    """
    if max_load <= 0:
        return 0
    if n <= 1:
        raise ValueError("relay routing needs at least 2 nodes")
    return 2 * math.ceil(max_load / n)


def _pad_to_regular(demand: Demand, n: int, degree: int) -> Demand:
    """Add dummy edges so every node has in- and out-degree exactly ``degree``.

    Returns the dummy demand only.  Total left deficiency equals total right
    deficiency, so a greedy two-pointer pairing always succeeds.  Dummy edges
    may connect a node to itself (the bipartite sides are distinct copies),
    which is harmless because dummies are stripped before the schedule is
    emitted.
    """
    out_deg = [0] * n
    in_deg = [0] * n
    for (u, v), c in demand.items():
        out_deg[u] += c
        in_deg[v] += c
    left_def = [(degree - d, u) for u, d in enumerate(out_deg) if degree - d > 0]
    right_def = [(degree - d, v) for v, d in enumerate(in_deg) if degree - d > 0]
    dummies: Demand = defaultdict(int)
    li = ri = 0
    while li < len(left_def) and ri < len(right_def):
        lc, u = left_def[li]
        rc, v = right_def[ri]
        take = min(lc, rc)
        dummies[(u, v)] += take
        left_def[li] = (lc - take, u)
        right_def[ri] = (rc - take, v)
        if left_def[li][0] == 0:
            li += 1
        if right_def[ri][0] == 0:
            ri += 1
    if li < len(left_def) or ri < len(right_def):
        raise AssertionError("deficiency totals must match on both sides")
    return dict(dummies)


def _euler_split(
    n: int, edges: list[tuple[int, int]]
) -> tuple[list[int], list[int]]:
    """Split a bipartite multigraph with all-even degrees into two halves.

    ``edges`` are (left, right) pairs.  Returns two lists of edge indices such
    that every vertex has exactly half its degree in each part.  Works by
    walking Euler circuits (per connected component) and assigning alternate
    edges to alternate halves; circuits in a bipartite graph have even length,
    so the alternation is consistent.
    """
    # Unified vertex ids: left u -> u, right v -> n + v.
    adj: list[list[tuple[int, int]]] = [[] for _ in range(2 * n)]
    for eid, (u, v) in enumerate(edges):
        adj[u].append((n + v, eid))
        adj[n + v].append((u, eid))
    used = [False] * len(edges)
    ptr = [0] * (2 * n)
    half_a: list[int] = []
    half_b: list[int] = []
    for start in range(2 * n):
        while True:
            # Find an unused edge at `start`, else move to the next start.
            while ptr[start] < len(adj[start]) and used[adj[start][ptr[start]][1]]:
                ptr[start] += 1
            if ptr[start] >= len(adj[start]):
                break
            # Iterative Hierholzer: collect one Euler circuit through `start`.
            stack: list[tuple[int, int | None]] = [(start, None)]
            circuit: list[int] = []
            while stack:
                vertex, in_edge = stack[-1]
                nxt: tuple[int, int] | None = None
                while ptr[vertex] < len(adj[vertex]):
                    to, eid = adj[vertex][ptr[vertex]]
                    if not used[eid]:
                        nxt = (to, eid)
                        break
                    ptr[vertex] += 1
                if nxt is None:
                    stack.pop()
                    if in_edge is not None:
                        circuit.append(in_edge)
                else:
                    used[nxt[1]] = True
                    stack.append(nxt)
            # `circuit` holds the circuit's edges (reversed order -- alternation
            # is direction-agnostic so no need to reverse).
            for i, eid in enumerate(circuit):
                (half_a if i % 2 == 0 else half_b).append(eid)
    return half_a, half_b


def colour_into_matchings(demand: Demand, n: int) -> list[list[tuple[int, int]]]:
    """Edge-colour a demand into matchings (Koenig via iterated Euler splits).

    Returns a list of matchings; each matching is a list of ``(src, dst)``
    word-messages in which every node appears at most once as a source and at
    most once as a destination.  Every unit of demand appears in exactly one
    matching.  The number of matchings is the maximum degree padded up to a
    power of two.
    """
    demand = {pair: c for pair, c in demand.items() if c > 0}
    if not demand:
        return []
    out_deg = defaultdict(int)
    in_deg = defaultdict(int)
    for (u, v), c in demand.items():
        out_deg[u] += c
        in_deg[v] += c
    max_deg = max(max(out_deg.values()), max(in_deg.values()))
    target = 1 << max(0, (max_deg - 1).bit_length())
    dummies = _pad_to_regular(demand, n, target)

    # Expand to unit edges; remember which are real.
    edges: list[tuple[int, int]] = []
    is_real: list[bool] = []
    for (u, v), c in demand.items():
        edges.extend([(u, v)] * c)
        is_real.extend([True] * c)
    for (u, v), c in dummies.items():
        edges.extend([(u, v)] * c)
        is_real.extend([False] * c)

    groups: list[list[int]] = [list(range(len(edges)))]
    degree = target
    while degree > 1:
        next_groups: list[list[int]] = []
        for group in groups:
            sub = [edges[i] for i in group]
            a, b = _euler_split(n, sub)
            next_groups.append([group[i] for i in a])
            next_groups.append([group[i] for i in b])
        groups = next_groups
        degree //= 2

    matchings: list[list[tuple[int, int]]] = []
    for group in groups:
        matching = [edges[i] for i in group if is_real[i]]
        if matching:
            matchings.append(matching)
    return matchings


def validate_matchings(
    matchings: list[list[tuple[int, int]]], demand: Demand
) -> None:
    """Assert the colouring is a proper, complete decomposition of the demand."""
    seen: Demand = defaultdict(int)
    for matching in matchings:
        srcs: set[int] = set()
        dsts: set[int] = set()
        for u, v in matching:
            if u in srcs:
                raise ScheduleValidationError(f"source {u} repeated in a matching")
            if v in dsts:
                raise ScheduleValidationError(f"destination {v} repeated in a matching")
            srcs.add(u)
            dsts.add(v)
            seen[(u, v)] += 1
    want = {pair: c for pair, c in demand.items() if c > 0}
    if dict(seen) != want:
        raise ScheduleValidationError("colouring does not cover the demand exactly")


@dataclass(frozen=True)
class RelaySchedule:
    """A materialised relay schedule.

    Attributes:
        rounds: total number of rounds.
        hops: per-round list of ``(sender, receiver)`` word transmissions
            (relay hops; a logical message appears as up to two hops).
    """

    rounds: int
    hops: list[list[tuple[int, int]]]


#: Memoised relay schedules, keyed on ``(n, topology key, sorted demand
#: items)``.  The oblivious exchanges of the matmul engines re-emit the
#: same demand every squaring (APSP runs ``O(log n)`` of them), and Koenig
#: colouring is by far the most expensive part of EXACT mode -- so
#: identical demands share one immutable schedule.  Bounded so
#: pathological workloads cannot hoard memory; entries are evicted FIFO.
_SCHEDULE_CACHE: dict[
    tuple[int, str | None, tuple[tuple[tuple[int, int], int], ...]],
    "RelaySchedule",
] = {}
_SCHEDULE_CACHE_MAX = 128


def relay_schedule(demand: Demand, n: int, topology=None) -> RelaySchedule:
    """Build and validate the full relay schedule for a demand (memoised).

    Implements the batch construction from the module docstring and checks
    every round against the one-word-per-ordered-pair model constraint.
    Schedules are cached per ``(n, topology, demand)``: callers must treat
    the returned schedule as immutable.

    When a :class:`repro.netsim.topology.Topology` is given, the
    batch-slot -> intermediate assignment (a pure round-equivalent degree
    of freedom -- rounds are ``2 * ceil(matchings / n)`` for *any*
    injective per-batch assignment) is chosen to minimise modelled hop
    distance instead of using the identity assignment, which shortens the
    transport-model makespan without changing a single charged round.
    """
    topo_key = getattr(topology, "cache_key", None) if topology is not None else None
    key = (n, topo_key, tuple(sorted(demand.items())))
    cached = _SCHEDULE_CACHE.get(key)
    if cached is not None:
        return cached
    schedule = _build_relay_schedule(demand, n, topology)
    if len(_SCHEDULE_CACHE) >= _SCHEDULE_CACHE_MAX:
        _SCHEDULE_CACHE.pop(next(iter(_SCHEDULE_CACHE)))
    _SCHEDULE_CACHE[key] = schedule
    return schedule


def _assign_intermediates(
    batch: list[list[tuple[int, int]]], n: int, distance: np.ndarray
) -> list[int]:
    """Cost-aware injective batch-slot -> intermediate assignment.

    Greedy: place the largest matchings first, each on the free
    intermediate minimising the summed hop distance of its relay legs
    ``sum(D[u, m] + D[m, v])``.  Any injective assignment is
    round-equivalent (the model constraint only needs the batch's
    matchings on pairwise-distinct relays), so this is free makespan.
    """
    order = sorted(range(len(batch)), key=lambda i: -len(batch[i]))
    free = set(range(n))
    chosen = [0] * len(batch)
    for i in order:
        matching = batch[i]
        if not matching:
            best = min(free)
        else:
            us = np.fromiter((u for u, _ in matching), dtype=np.int64)
            vs = np.fromiter((v for _, v in matching), dtype=np.int64)
            candidates = np.fromiter(free, dtype=np.int64)
            leg_cost = (
                distance[us[:, None], candidates[None, :]].sum(axis=0)
                + distance[candidates[None, :], vs[:, None]].sum(axis=0)
            )
            best = int(candidates[int(np.argmin(leg_cost))])
        chosen[i] = best
        free.remove(best)
    return chosen


def _build_relay_schedule(demand: Demand, n: int, topology=None) -> RelaySchedule:
    matchings = colour_into_matchings(demand, n)
    validate_matchings(matchings, demand)
    distance = topology.distance_matrix() if topology is not None else None
    hops: list[list[tuple[int, int]]] = []
    for batch_start in range(0, len(matchings), n):
        batch = matchings[batch_start : batch_start + n]
        if distance is None:
            intermediates = list(range(len(batch)))
        else:
            intermediates = _assign_intermediates(batch, n, distance)
        phase_a: list[tuple[int, int]] = []
        phase_b: list[tuple[int, int]] = []
        for matching, intermediate in zip(batch, intermediates):
            for u, v in matching:
                if u != intermediate:
                    phase_a.append((u, intermediate))
                if intermediate != v:
                    phase_b.append((intermediate, v))
        hops.append(phase_a)
        hops.append(phase_b)
    schedule = RelaySchedule(rounds=len(hops), hops=hops)
    validate_relay_schedule(schedule)
    return schedule


def validate_relay_schedule(schedule: RelaySchedule) -> None:
    """Check that no round ships two words across the same ordered pair."""
    for rnd, hop_list in enumerate(schedule.hops):
        seen: set[tuple[int, int]] = set()
        for pair in hop_list:
            if pair[0] == pair[1]:
                raise ScheduleValidationError(
                    f"round {rnd}: self hop {pair} should have been elided"
                )
            if pair in seen:
                raise ScheduleValidationError(
                    f"round {rnd}: ordered pair {pair} used twice"
                )
            seen.add(pair)


def broadcast_rounds(words_per_node: list[int]) -> int:
    """Rounds for every node to broadcast its words to all others."""
    if not words_per_node:
        return 0
    return max(words_per_node)


#: Knuth's multiplicative-hash constant; spreads consecutive piece indices
#: over the relay ring so one corrupt node does not hit a contiguous run of
#: pieces.
_RELAY_STRIDE = 2654435761


def disjoint_relays(pieces: int, copies: int, n: int, salt: int = 0) -> np.ndarray:
    """Relay assignment for replicated oblivious routing.

    Returns a ``(pieces, copies)`` int64 array: copy ``j`` of piece ``i``
    traverses intermediate node ``(base_i + j) mod n``.  This mirrors the
    batch construction of :func:`relay_schedule` -- within a batch, the
    matching with batch-local slot ``i`` is relayed through node ``i``, so
    consecutive slots mean distinct intermediates.  Assigning the ``copies``
    replicas of a piece to consecutive slots therefore puts them on
    pairwise-*distinct* relay nodes (requires ``copies <= n``), which is the
    disjointness the majority decode's support threshold counts on: an
    adversary corrupting ``t`` nodes in an exchange touches at most ``t`` of
    a piece's copies.

    The assignment is a pure function of ``(pieces, copies, n, salt)`` --
    oblivious routing is input-independent and public, so fault plans and
    decoders agree on it without communication.  ``salt`` varies the base
    permutation per exchange (retries re-route through fresh relays).
    """
    if n < 1:
        raise ValueError(f"relay assignment needs n >= 1, got {n}")
    if not 1 <= copies <= n:
        raise ValueError(
            f"need 1 <= copies <= n = {n} pairwise-distinct relays per "
            f"piece, got copies = {copies}"
        )
    if pieces < 0:
        raise ValueError(f"piece count must be non-negative, got {pieces}")
    base = (
        np.arange(pieces, dtype=np.int64) * _RELAY_STRIDE
        + np.int64(salt % n) * 40503
    ) % n
    return (base[:, None] + np.arange(copies, dtype=np.int64)[None, :]) % n


__all__ = [
    "Demand",
    "direct_rounds",
    "relay_rounds_fast",
    "colour_into_matchings",
    "validate_matchings",
    "RelaySchedule",
    "relay_schedule",
    "validate_relay_schedule",
    "broadcast_rounds",
    "disjoint_relays",
]
