"""Workload generators for the benchmark harness and tests.

Each generator returns a :class:`repro.graphs.graphs.Graph` and is seeded for
reproducibility.  The families mirror the workloads the paper's problems
call for: random graphs for counting, planted cycles and cycle-free families
for detection, girth-controlled graphs for Theorem 15's two branches, and
weighted digraphs / grid networks for the APSP variants.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graphs import Graph


def gnp_random_graph(n: int, p: float, seed: int = 0, directed: bool = False) -> Graph:
    """Erdos-Renyi ``G(n, p)``."""
    rng = np.random.default_rng(seed)
    coin = rng.random((n, n)) < p
    if directed:
        adj = coin.astype(np.int64)
    else:
        upper = np.triu(coin, k=1)
        adj = (upper | upper.T).astype(np.int64)
    np.fill_diagonal(adj, 0)
    return Graph(n=n, adjacency=adj, directed=directed)


def random_tree(n: int, seed: int = 0) -> Graph:
    """A uniformly random recursive tree -- acyclic, so girth is infinite."""
    rng = np.random.default_rng(seed)
    edges = [(int(rng.integers(0, v)), v) for v in range(1, n)]
    return Graph.from_edges(n, edges)


def cycle_graph(n: int, directed: bool = False) -> Graph:
    """The single cycle ``C_n``."""
    edges = [(v, (v + 1) % n) for v in range(n)]
    return Graph.from_edges(n, edges, directed=directed)


def planted_cycle_graph(
    n: int,
    k: int,
    seed: int = 0,
    extra_edge_prob: float = 0.0,
    directed: bool = False,
) -> Graph:
    """A sparse background plus one planted ``k``-cycle on random nodes.

    With ``extra_edge_prob = 0`` the graph is a ``k``-cycle plus isolated
    random tree edges -- girth exactly ``k`` -- which is the completeness
    workload for the colour-coding detector.
    """
    if k < 3 or k > n:
        raise ValueError(f"need 3 <= k <= n, got k={k}, n={n}")
    rng = np.random.default_rng(seed)
    nodes = rng.permutation(n)[:k]
    edges = [
        (int(nodes[i]), int(nodes[(i + 1) % k])) for i in range(k)
    ]
    adj = np.zeros((n, n), dtype=np.int64)
    for u, v in edges:
        adj[u, v] = 1
        if not directed:
            adj[v, u] = 1
    if extra_edge_prob > 0:
        # Attach random tree edges outside the cycle (they cannot create
        # cycles, so the planted girth is preserved).
        cycle_set = set(int(x) for x in nodes)
        rest = [v for v in range(n) if v not in cycle_set]
        anchors = list(cycle_set)
        for v in rest:
            if rng.random() < extra_edge_prob:
                u = int(rng.choice(anchors))
                adj[v, u] = 1
                if not directed:
                    adj[u, v] = 1
                anchors.append(v)
    np.fill_diagonal(adj, 0)
    return Graph(n=n, adjacency=adj, directed=directed)


def windmill_graph(n: int) -> Graph:
    """Triangles sharing a single hub: girth 3, provably 4-cycle-free.

    A useful adversarial case for the Theorem 4 detector -- it has a
    high-degree hub (stress for the Lemma 12 tiling) yet contains no C4.
    """
    edges = []
    v = 1
    while v + 1 < n:
        edges.append((0, v))
        edges.append((0, v + 1))
        edges.append((v, v + 1))
        v += 2
    if v < n:
        edges.append((0, v))
    return Graph.from_edges(n, edges)


def bipartite_random_graph(n: int, p: float, seed: int = 0) -> Graph:
    """Random bipartite graph -- no odd cycles; 4-cycles appear for modest p."""
    rng = np.random.default_rng(seed)
    half = n // 2
    adj = np.zeros((n, n), dtype=np.int64)
    coin = rng.random((half, n - half)) < p
    adj[:half, half:] = coin.astype(np.int64)
    adj[half:, :half] = adj[:half, half:].T
    return Graph(n=n, adjacency=adj)


def cycle_with_trees(n: int, girth: int, seed: int = 0) -> Graph:
    """A ``girth``-cycle with random trees hanging off it: girth exact.

    The sparse-branch workload for Theorem 15: few edges, known girth.
    """
    if girth < 3 or girth > n:
        raise ValueError(f"need 3 <= girth <= n, got girth={girth}, n={n}")
    rng = np.random.default_rng(seed)
    edges = [(v, (v + 1) % girth) for v in range(girth)]
    for v in range(girth, n):
        edges.append((int(rng.integers(0, v)), v))
    return Graph.from_edges(n, edges)


def dense_small_girth_graph(n: int, seed: int = 0) -> Graph:
    """A dense graph (for Theorem 15's dense branch): girth 3 w.h.p."""
    return gnp_random_graph(n, p=0.5, seed=seed)


def random_weighted_digraph(
    n: int, p: float, max_weight: int, seed: int = 0, min_weight: int = 1
) -> Graph:
    """Random weighted digraph with integer weights in ``[min_w, max_w]``."""
    rng = np.random.default_rng(seed)
    adj = (rng.random((n, n)) < p).astype(np.int64)
    np.fill_diagonal(adj, 0)
    weights = rng.integers(min_weight, max_weight + 1, size=(n, n), dtype=np.int64)
    weights = weights * adj
    return Graph(n=n, adjacency=adj, directed=True, weights=weights)


def random_weighted_graph(
    n: int, p: float, max_weight: int, seed: int = 0, min_weight: int = 1
) -> Graph:
    """Random undirected weighted graph."""
    rng = np.random.default_rng(seed)
    upper = np.triu(rng.random((n, n)) < p, k=1)
    adj = (upper | upper.T).astype(np.int64)
    w_upper = np.triu(
        rng.integers(min_weight, max_weight + 1, size=(n, n), dtype=np.int64), k=1
    )
    weights = (w_upper + w_upper.T) * adj
    return Graph(n=n, adjacency=adj, directed=False, weights=weights)


def grid_graph(rows: int, cols: int, max_weight: int = 10, seed: int = 0) -> Graph:
    """A weighted grid -- the road-network-style APSP workload.

    Nodes are grid points, edges connect 4-neighbours, weights are random
    "travel times" in ``[1, max_weight]``.
    """
    rng = np.random.default_rng(seed)
    n = rows * cols
    edges: list[tuple[int, int, int]] = []

    def node(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append(
                    (node(r, c), node(r, c + 1), int(rng.integers(1, max_weight + 1)))
                )
            if r + 1 < rows:
                edges.append(
                    (node(r, c), node(r + 1, c), int(rng.integers(1, max_weight + 1)))
                )
    return Graph.from_weighted_edges(n, edges)


def preferential_attachment_graph(n: int, attach: int = 2, seed: int = 0) -> Graph:
    """Barabasi-Albert-style social network: heavy-tailed degrees.

    The triangle-counting motivation workload (social networks); implemented
    directly so the substrate has no external dependencies on this path.
    """
    if attach < 1 or attach >= n:
        raise ValueError(f"need 1 <= attach < n, got attach={attach}, n={n}")
    rng = np.random.default_rng(seed)
    adj = np.zeros((n, n), dtype=np.int64)
    targets = list(range(attach))
    repeated: list[int] = list(range(attach))
    for v in range(attach, n):
        chosen: set[int] = set()
        while len(chosen) < min(attach, v):
            pick = int(rng.choice(repeated)) if rng.random() < 0.7 else int(
                rng.integers(0, v)
            )
            chosen.add(pick)
        for u in chosen:
            adj[u, v] = adj[v, u] = 1
            repeated.append(u)
            repeated.append(v)
        targets.append(v)
    np.fill_diagonal(adj, 0)
    return Graph(n=n, adjacency=adj)


__all__ = [
    "gnp_random_graph",
    "random_tree",
    "cycle_graph",
    "planted_cycle_graph",
    "windmill_graph",
    "bipartite_random_graph",
    "cycle_with_trees",
    "dense_small_girth_graph",
    "random_weighted_digraph",
    "random_weighted_graph",
    "grid_graph",
    "preferential_attachment_graph",
]
