"""Fault injection and encoded-exchange robustness for the collective stack.

The subsystem has four layers (PR 6 + PR 9; see DESIGN.md "Fault model"
and "Coded fault model"):

* :mod:`repro.faults.plan` -- seeded deterministic adversaries
  (:class:`FaultPlan`): word flips, message drops, crash-stop, and
  persistent Byzantine nodes, corrupting up to ``t`` relay nodes per
  exchange.
* :mod:`repro.faults.injection` -- :class:`FaultyClique`, a pure
  interception wrapper over the array collectives (bit-identical charges
  and contents when no plan is installed).
* :mod:`repro.faults.coding` -- systematic Reed-Solomon striping over
  GF(2^16): pure-numpy encode, vectorised syndrome certification, erasure
  and error decoding.
* :mod:`repro.faults.protocol` -- :class:`EncodedClique` and its two
  schemes: :class:`RobustClique` (``2t + 1``-way replication with
  supported-majority decode, :func:`majority_decode`) and
  :class:`CodedClique` (RS striping, overhead toward ``n / (n - 2t)``),
  both with detect-retry-degrade semantics: an encoded closure equals the
  fault-free oracle or raises :class:`FaultToleranceExceeded` -- never a
  silent wrong answer.

Motivated by the robust Congested Clique compilers of Censor-Hillel et al.
(arXiv:2508.08740): our collectives move fixed-width records, so both a
replication code and an error-correcting stripe code over disjoint relay
sets drop in without touching the algorithms above the session API.
"""

from repro.errors import FaultToleranceExceeded
from repro.faults.coding import (
    StripePlan,
    decode_stripes,
    encode_stripes,
    stripe_plan,
)
from repro.faults.encoding import majority_decode
from repro.faults.injection import FaultyClique, corrupt_pieces, flip_masks
from repro.faults.plan import FaultKind, FaultPlan
from repro.faults.protocol import (
    FAULT_SCHEMES,
    CodedClique,
    EncodedClique,
    RobustClique,
)

__all__ = [
    "FAULT_SCHEMES",
    "FaultKind",
    "FaultPlan",
    "FaultyClique",
    "EncodedClique",
    "RobustClique",
    "CodedClique",
    "FaultToleranceExceeded",
    "StripePlan",
    "majority_decode",
    "corrupt_pieces",
    "flip_masks",
    "decode_stripes",
    "encode_stripes",
    "stripe_plan",
]
