"""Sharded vs serial executors: bit-identical values, rounds and meters.

The local-compute executor only moves block products between processes --
it must be invisible to everything else: identical answers, identical
witness/routing tables, identical round charges and identical per-phase
meter entries for every algorithm, on every engine.  These tests run the
same workloads on both backends (one shared worker pool, fast-lane sizes)
and compare everything; a `slow`-marked smoke test exercises the
multiprocessing path at a bigger size for CI.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.semirings import ALL_SEMIRINGS, BOOLEAN, MIN_PLUS, PLUS_TIMES
from repro.clique.executor import (
    SERIAL_EXECUTOR,
    ShardedExecutor,
    make_executor,
    shard_ranges,
)
from repro.clique.model import CongestedClique
from repro.constants import INF
from repro.distances import apsp_exact, girth_directed
from repro.distances.components import connected_components
from repro.engine import EngineSession
from repro.graphs.generators import gnp_random_graph, random_weighted_graph
from repro.matmul.ringops import INTEGER_RING, POLYNOMIAL_RING


@pytest.fixture(scope="module")
def sharded():
    """One worker pool for the whole module (sessions reuse it the same way)."""
    executor = ShardedExecutor(2)
    yield executor
    executor.close()


def _clique_pair(n: int, sharded_executor) -> tuple[CongestedClique, CongestedClique]:
    return (
        CongestedClique(n, executor=SERIAL_EXECUTOR),
        CongestedClique(n, executor=sharded_executor),
    )


def assert_same_run(serial, shard):
    """Two RunResults must agree on answer, rounds and every meter entry."""
    if isinstance(serial.value, np.ndarray):
        assert np.array_equal(serial.value, shard.value)
    else:
        assert serial.value == shard.value
    assert serial.rounds == shard.rounds
    assert serial.clique_size == shard.clique_size
    assert serial.meter.phases == shard.meter.phases
    for key, val in serial.extras.items():
        other = shard.extras[key]
        if isinstance(val, np.ndarray):
            assert np.array_equal(val, other), key
        else:
            assert val == other, key


class TestShardRanges:
    def test_partition_covers_batch(self):
        assert shard_ranges(10, 3) == [(0, 3), (3, 6), (6, 10)]
        assert shard_ranges(2, 8) == [(0, 1), (1, 2)]
        assert shard_ranges(0, 4) == []

    def test_make_executor(self):
        assert make_executor(1) is SERIAL_EXECUTOR
        executor = make_executor(3)
        assert isinstance(executor, ShardedExecutor)
        assert executor.shards == 3
        executor.close()
        with pytest.raises(ValueError):
            make_executor(0)


class TestBatchProducts:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_semiring_products_identical(self, sharded, seed):
        rng = np.random.default_rng(seed)
        batch, m = int(rng.integers(2, 10)), int(rng.integers(1, 8))
        for semiring in ALL_SEMIRINGS:
            x = rng.integers(-20, 60, (batch, m, m))
            y = rng.integers(-20, 60, (batch, m, m))
            if semiring is MIN_PLUS:
                x[rng.random(x.shape) < 0.3] = INF
                y[rng.random(y.shape) < 0.3] = INF
            ref = SERIAL_EXECUTOR.semiring_products(semiring, x, y)
            got = sharded.semiring_products(semiring, x, y)
            assert np.array_equal(ref, got), semiring.name
            if semiring.has_witnesses:
                rp, rw = SERIAL_EXECUTOR.semiring_products(
                    semiring, x, y, with_witnesses=True
                )
                gp, gw = sharded.semiring_products(
                    semiring, x, y, with_witnesses=True
                )
                assert np.array_equal(rp, gp), semiring.name
                assert np.array_equal(rw, gw), semiring.name

    def test_ring_products_identical(self, sharded, rng):
        x = rng.integers(-9, 10, (7, 6, 6))
        y = rng.integers(-9, 10, (7, 6, 6))
        assert np.array_equal(
            sharded.ring_products(INTEGER_RING, x, y),
            SERIAL_EXECUTOR.ring_products(INTEGER_RING, x, y),
        )
        xp = rng.integers(0, 2, (5, 4, 4, 3))
        yp = rng.integers(0, 2, (5, 4, 4, 2))
        assert np.array_equal(
            sharded.ring_products(POLYNOMIAL_RING, xp, yp),
            SERIAL_EXECUTOR.ring_products(POLYNOMIAL_RING, xp, yp),
        )


class TestAlgorithmEquivalence:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_apsp_exact_with_routing_tables(self, sharded, seed):
        graph = random_weighted_graph(
            4 + seed % 9, 0.4, max_weight=20, seed=seed
        )
        serial_clique, shard_clique = _clique_pair(27, sharded)
        serial = apsp_exact(graph, clique=serial_clique)
        shard = apsp_exact(graph, clique=shard_clique)
        assert_same_run(serial, shard)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_girth_directed(self, sharded, seed):
        graph = gnp_random_graph(4 + seed % 9, 0.25, seed=seed, directed=True)
        for method, size in (("semiring", 27), ("naive", graph.n)):
            if size < 2:
                continue
            serial_clique, shard_clique = _clique_pair(size, sharded)
            serial = girth_directed(graph, method=method, clique=serial_clique)
            shard = girth_directed(graph, method=method, clique=shard_clique)
            assert_same_run(serial, shard)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_boolean_closure_components(self, sharded, seed):
        graph = gnp_random_graph(4 + seed % 9, 0.2, seed=seed)
        for method, size in (("semiring", 27), ("bilinear", 16)):
            if size < graph.n:
                continue
            serial_clique, shard_clique = _clique_pair(size, sharded)
            serial = connected_components(
                graph, method=method, clique=serial_clique
            )
            shard = connected_components(
                graph, method=method, clique=shard_clique
            )
            assert_same_run(serial, shard)

    def test_min_plus_witness_squaring(self, sharded, rng):
        d = rng.integers(0, 100, (27, 27))
        d[rng.random((27, 27)) < 0.2] = INF
        np.fill_diagonal(d, 0)
        serial_clique, shard_clique = _clique_pair(27, sharded)
        s_sess = EngineSession(serial_clique, "semiring", MIN_PLUS)
        p_sess = EngineSession(shard_clique, "semiring", MIN_PLUS)
        sp, sw = s_sess.multiply(d, d, with_witnesses=True)
        pp, pw = p_sess.multiply(d, d, with_witnesses=True)
        assert np.array_equal(sp, pp)
        assert np.array_equal(sw, pw)
        assert serial_clique.meter.phases == shard_clique.meter.phases


@pytest.mark.slow
class TestShardSmoke:
    """Bigger multiprocessing smoke (run in CI via `pytest -m slow -k shard`)."""

    def test_large_apsp_and_bilinear_sharded(self):
        with ShardedExecutor(3) as executor:
            graph = random_weighted_graph(40, 0.15, max_weight=50, seed=7)
            serial = apsp_exact(
                graph, clique=CongestedClique(64, executor=SERIAL_EXECUTOR)
            )
            shard = apsp_exact(
                graph, clique=CongestedClique(64, executor=executor)
            )
            assert_same_run(serial, shard)

            rng = np.random.default_rng(11)
            s = rng.integers(-9, 10, (64, 64))
            serial_clique = CongestedClique(64, executor=SERIAL_EXECUTOR)
            shard_clique = CongestedClique(64, executor=executor)
            ref = EngineSession(serial_clique, "bilinear").multiply(s, s)
            got = EngineSession(shard_clique, "bilinear").multiply(s, s)
            assert np.array_equal(ref, got)
            assert np.array_equal(ref, s @ s)
            assert serial_clique.meter.phases == shard_clique.meter.phases
