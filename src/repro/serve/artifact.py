"""Versioned on-disk closure artifacts, memory-mapped for serving.

Layout (one directory per artifact)::

    manifest.json   format/version, algebra, n, graph hash, rounds billed,
                    fault summary, generation, block index
    dist.bin        (n, n) int64 closure distances, row-major
    next_hop.bin    (n, n) int64 routing table (-1 = unreachable / diagonal)
    weights.bin     (n, n) int64 edge weights (INF = non-edge)

Blocks are raw arrays written with ``ndarray.tofile`` and opened with
``np.memmap(mode="r")``: opening costs a manifest parse plus three mmap
calls -- O(1) in ``n`` -- and the OS pages rows in on demand, so a server
process is answering queries milliseconds after start regardless of graph
size.  :meth:`ClosureArtifact.open` refuses version or graph-hash
mismatches (:class:`ArtifactError`) and refuses *degraded* builds
(:class:`~repro.errors.FaultToleranceExceeded` -- the exit-2 path), so no
silently wrong closure is ever served.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.constants import INF
from repro.errors import FaultToleranceExceeded, NegativeCycleError
from repro.graphs.graphs import Graph
from repro.runtime import pad_matrix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import EngineSession

#: On-disk format tag and version; `open` refuses anything else.
ARTIFACT_FORMAT = "repro-closure-artifact"
ARTIFACT_VERSION = 1

MANIFEST_NAME = "manifest.json"

_BLOCK_FILES = {
    "dist": "dist.bin",
    "next_hop": "next_hop.bin",
    "weights": "weights.bin",
}


class ArtifactError(ValueError):
    """A manifest/block mismatch: wrong version, graph hash, or layout."""


def graph_fingerprint(graph: Graph) -> str:
    """Stable sha256 of (n, orientation, weight matrix) for manifest checks."""
    digest = hashlib.sha256()
    digest.update(b"repro-graph-v1|")
    digest.update(str(graph.n).encode("ascii"))
    digest.update(b"|directed|" if graph.directed else b"|undirected|")
    weights = np.ascontiguousarray(graph.weight_matrix(), dtype=np.int64)
    digest.update(weights.tobytes())
    return digest.hexdigest()


def _weights_fingerprint(n: int, directed: bool, weights: np.ndarray) -> str:
    """The same fingerprint computed from an artifact's weights block."""
    digest = hashlib.sha256()
    digest.update(b"repro-graph-v1|")
    digest.update(str(n).encode("ascii"))
    digest.update(b"|directed|" if directed else b"|undirected|")
    digest.update(np.ascontiguousarray(weights, dtype=np.int64).tobytes())
    return digest.hexdigest()


def _fault_summary(clique) -> dict | None:
    """Adversary + redundancy accounting for the manifest, if faulted."""
    plan = getattr(clique, "plan", None)
    if plan is None:
        return None
    kind = getattr(plan, "kind", None)
    summary = {
        "kind": getattr(kind, "value", kind),
        "t": getattr(plan, "t", None),
        "seed": getattr(plan, "seed", None),
        "injected": int(getattr(clique, "faults_injected", 0)),
        "protected": hasattr(clique, "abstract_meter"),
    }
    if summary["protected"]:
        summary["scheme"] = getattr(clique, "scheme", "replicate")
        summary["tolerance"] = int(getattr(clique, "tolerance", 0))
        summary["copies"] = int(getattr(clique, "copies", 0))
        summary["retries"] = int(getattr(clique, "retries", 0))
        summary["abstract_rounds"] = int(clique.abstract_meter.rounds)
    return summary


@dataclass
class ClosureArtifact:
    """One opened artifact: a parsed manifest plus memory-mapped blocks.

    ``dist``/``next_hop``/``weights`` are ``(n, n)`` int64 ``np.memmap``
    views (read-only unless opened ``writable``); the arrays are never
    copied into memory wholesale.
    """

    path: Path
    manifest: dict
    dist: np.ndarray
    next_hop: np.ndarray
    weights: np.ndarray
    writable: bool = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        return int(self.manifest["n"])

    @property
    def directed(self) -> bool:
        return bool(self.manifest["directed"])

    @property
    def generation(self) -> int:
        return int(self.manifest["generation"])

    @property
    def graph_hash(self) -> str:
        return str(self.manifest["graph_hash"])

    @property
    def rounds(self) -> int:
        """Rounds the build (plus any committed updates) billed."""
        return int(self.manifest["rounds"])

    # ------------------------------------------------------------------ #
    # Build side
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        session: "EngineSession",
        graph: Graph,
        path: str | Path,
        *,
        steps: int | None = None,
    ) -> "ClosureArtifact":
        """Square ``graph`` to closure on ``session`` and materialise it.

        The session must bind a selection semiring with witnesses (min-plus
        for distances) on the semiring/naive engine; the closure runs on the
        session's *resident* state (:meth:`EngineSession.seed_resident` /
        :meth:`EngineSession.resident_closure`), which is exactly what the
        delta layer re-squares later.

        A build whose robust collectives exceed their fault tolerance still
        writes a manifest -- marked ``status: "degraded"`` so every later
        :meth:`open` refuses it -- and re-raises
        :class:`~repro.errors.FaultToleranceExceeded` (the CLI's exit-2
        path).  A build that ran on an *unprotected* faulty clique and saw
        faults injected is likewise recorded as degraded: its values are
        untrusted by construction.
        """
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        n = graph.n
        if session.n < n:
            raise ValueError(
                f"session clique (n={session.n}) too small for graph n={n}"
            )
        weights = graph.weight_matrix()
        manifest: dict = {
            "format": ARTIFACT_FORMAT,
            "version": ARTIFACT_VERSION,
            "algebra": getattr(session.algebra, "name", str(session.algebra)),
            "engine": session.method,
            "n": n,
            "clique_n": session.n,
            "directed": graph.directed,
            "graph_hash": graph_fingerprint(graph),
            "generation": 0,
            "status": "ok",
            "faults": _fault_summary(session.clique),
        }

        mark = session.meter.snapshot()
        session.seed_resident(pad_matrix(weights, session.n, fill=INF))

        def check_diagonal(step: int, accum: np.ndarray) -> None:
            if np.any(np.diag(accum) < 0):
                raise NegativeCycleError(
                    "negative-weight cycle detected while building artifact"
                )

        try:
            session.resident_closure(
                steps=steps, on_step=check_diagonal, phase="serve/build"
            )
        except FaultToleranceExceeded as exc:
            manifest["status"] = "degraded"
            manifest["error"] = str(exc)
            manifest["rounds"] = session.meter.rounds_since(mark)
            manifest["blocks"] = {}
            _write_manifest(path, manifest)
            raise
        except Exception as exc:
            # An unprotected adversary can corrupt witness indices badly
            # enough to crash the closure outright; record that build as
            # degraded too, so the directory can never be mistaken for a
            # clean artifact in progress.
            faults = _fault_summary(session.clique)
            if faults is not None and faults["injected"]:
                manifest["status"] = "degraded"
                manifest["faults"] = faults
                manifest["error"] = (
                    f"build crashed after {faults['injected']} unprotected "
                    f"fault injection(s): {exc}"
                )
                manifest["rounds"] = session.meter.rounds_since(mark)
                manifest["blocks"] = {}
                _write_manifest(path, manifest)
            raise
        state = session.resident
        assert state is not None
        faults = _fault_summary(session.clique)
        manifest["faults"] = faults
        if faults is not None and faults["injected"] and not faults["protected"]:
            # Unprotected adversary: values may be silently wrong, so the
            # artifact is unservable by construction.
            manifest["status"] = "degraded"
            manifest["error"] = (
                f"{faults['injected']} fault(s) injected without robust "
                f"collectives; closure values are untrusted"
            )
            manifest["rounds"] = session.meter.rounds_since(mark)
            manifest["blocks"] = {}
            _write_manifest(path, manifest)
            raise FaultToleranceExceeded(manifest["error"])
        manifest["rounds"] = session.meter.rounds_since(mark)
        manifest["squarings"] = state.squarings

        hops = np.array(state.next_hop[:n, :n])
        np.fill_diagonal(hops, -1)
        blocks = {
            "dist": np.ascontiguousarray(state.dist[:n, :n]),
            "next_hop": np.ascontiguousarray(hops),
            "weights": np.ascontiguousarray(weights, dtype=np.int64),
        }
        manifest["blocks"] = {}
        for name, array in blocks.items():
            filename = _BLOCK_FILES[name]
            array.tofile(path / filename)
            manifest["blocks"][name] = {
                "file": filename,
                "dtype": "int64",
                "shape": [n, n],
            }
        _write_manifest(path, manifest)
        return cls.open(path)

    # ------------------------------------------------------------------ #
    # Hot side
    # ------------------------------------------------------------------ #

    @classmethod
    def open(
        cls,
        path: str | Path,
        *,
        expect_graph: Graph | None = None,
        verify_hash: bool = False,
        writable: bool = False,
    ) -> "ClosureArtifact":
        """Memory-map an artifact; O(1) in ``n``.

        Refusals: a missing/foreign/newer manifest or a graph-hash mismatch
        raise :class:`ArtifactError`; a ``status != "ok"`` (degraded) build
        raises :class:`~repro.errors.FaultToleranceExceeded`, so the CLI
        propagates the same exit code 2 the degraded build itself did.

        ``expect_graph`` checks the manifest hash against a caller-supplied
        graph; ``verify_hash=True`` additionally recomputes the hash from
        the weights block (O(n^2) -- off by default to keep open O(1)).
        """
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.is_file():
            raise ArtifactError(f"no artifact manifest at {manifest_path}")
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"unreadable manifest at {manifest_path}: {exc}")
        if manifest.get("format") != ARTIFACT_FORMAT:
            raise ArtifactError(
                f"not a closure artifact (format={manifest.get('format')!r})"
            )
        if manifest.get("version") != ARTIFACT_VERSION:
            raise ArtifactError(
                f"artifact version {manifest.get('version')!r} does not match "
                f"this reader (version {ARTIFACT_VERSION})"
            )
        if manifest.get("status") != "ok":
            raise FaultToleranceExceeded(
                f"artifact at {path} is degraded and refuses to serve: "
                f"{manifest.get('error', 'unknown build failure')}"
            )
        if expect_graph is not None:
            expected = graph_fingerprint(expect_graph)
            if expected != manifest.get("graph_hash"):
                raise ArtifactError(
                    f"graph hash mismatch: artifact built for "
                    f"{manifest.get('graph_hash')}, expected {expected}"
                )
        n = int(manifest["n"])
        mode = "r+" if writable else "r"
        arrays = {}
        for name, spec in manifest["blocks"].items():
            block_path = path / spec["file"]
            if not block_path.is_file():
                raise ArtifactError(f"missing block file {block_path}")
            shape = tuple(spec["shape"])
            expected_bytes = int(np.prod(shape)) * np.dtype(np.int64).itemsize
            if block_path.stat().st_size != expected_bytes:
                raise ArtifactError(
                    f"block {name} has {block_path.stat().st_size} bytes, "
                    f"expected {expected_bytes}"
                )
            arrays[name] = np.memmap(
                block_path, dtype=np.int64, mode=mode, shape=shape
            )
        for required in _BLOCK_FILES:
            if required not in arrays:
                raise ArtifactError(f"manifest lists no {required!r} block")
        artifact = cls(
            path=path,
            manifest=manifest,
            dist=arrays["dist"],
            next_hop=arrays["next_hop"],
            weights=arrays["weights"],
            writable=writable,
        )
        if verify_hash:
            recomputed = _weights_fingerprint(
                n, artifact.directed, artifact.weights
            )
            if recomputed != artifact.graph_hash:
                raise ArtifactError(
                    f"weights block hash {recomputed} does not match "
                    f"manifest graph hash {artifact.graph_hash}"
                )
        return artifact

    # ------------------------------------------------------------------ #
    # Delta write-back
    # ------------------------------------------------------------------ #

    def resident_arrays(self, clique_n: int) -> tuple[np.ndarray, np.ndarray]:
        """Padded (dist, next_hop) copies for re-seeding a session.

        Restores the *working* routing convention (diagonal routes to
        itself) that :meth:`EngineSession.seed_resident` expects, with the
        padding region inert (INF distances, identity hops).
        """
        n = self.n
        if clique_n < n:
            raise ValueError(f"clique size {clique_n} < artifact n {n}")
        dist = np.full((clique_n, clique_n), INF, dtype=np.int64)
        dist[:n, :n] = self.dist
        hops = np.full((clique_n, clique_n), -1, dtype=np.int64)
        hops[:n, :n] = self.next_hop
        np.fill_diagonal(dist, 0)
        np.fill_diagonal(hops, np.arange(clique_n))
        return dist, hops

    def padded_weights(self, clique_n: int) -> np.ndarray:
        """The weights block padded to clique size (INF off-graph)."""
        return pad_matrix(np.array(self.weights), clique_n, fill=INF)

    def commit_update(
        self,
        *,
        dist: np.ndarray,
        next_hop: np.ndarray,
        weights: np.ndarray,
        rows: Sequence[int] | np.ndarray,
        weight_rows: Sequence[int] | np.ndarray,
        report: Mapping[str, object],
    ) -> None:
        """Rewrite only the touched rows of the blocks; bump the generation.

        ``dist``/``next_hop``/``weights`` are the maintainer's full (clique-
        padded) arrays; ``rows`` are the graph-row indices whose closure
        entries changed and ``weight_rows`` those whose weights did.  The
        routing diagonal is re-normalised to the on-disk ``-1`` convention.
        Requires the artifact to have been opened ``writable=True``.
        """
        if not self.writable:
            raise ArtifactError(
                "artifact opened read-only; reopen with writable=True to "
                "commit updates"
            )
        n = self.n
        rows = np.unique(np.asarray(rows, dtype=np.int64))
        rows = rows[rows < n]
        weight_rows = np.unique(np.asarray(weight_rows, dtype=np.int64))
        weight_rows = weight_rows[weight_rows < n]
        for row in rows:
            self.dist[row] = dist[row, :n]
            hop_row = np.array(next_hop[row, :n])
            hop_row[row] = -1
            self.next_hop[row] = hop_row
        for row in weight_rows:
            self.weights[row] = weights[row, :n]
        self.dist.flush()
        self.next_hop.flush()
        self.weights.flush()
        self.manifest["generation"] = self.generation + 1
        self.manifest["graph_hash"] = _weights_fingerprint(
            n, self.directed, self.weights
        )
        self.manifest["rounds"] = self.rounds + int(report.get("rounds", 0))
        self.manifest["last_update"] = dict(report)
        _write_manifest(self.path, self.manifest)


def _write_manifest(path: Path, manifest: dict) -> None:
    (path / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "ArtifactError",
    "ClosureArtifact",
    "graph_fingerprint",
]
