"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


def random_demand(
    rng: np.random.Generator, n: int, max_messages: int = 30, max_width: int = 4
) -> dict[tuple[int, int], int]:
    """A random routed-exchange demand for scheduling tests."""
    demand: dict[tuple[int, int], int] = {}
    for u in range(n):
        for _ in range(int(rng.integers(0, max_messages))):
            v = int(rng.integers(0, n))
            if u == v:
                continue
            demand[(u, v)] = demand.get((u, v), 0) + int(rng.integers(1, max_width + 1))
    return demand
