"""Tests for the round predictors and exponent fitting."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.algebra.bilinear import strassen_power
from repro.constants import RHO_IMPLEMENTED
from repro.matmul.exponent import (
    fit_exponent,
    predicted_bilinear_rounds,
    predicted_naive_rounds,
    predicted_semiring3d_rounds,
)


class TestFitExponent:
    def test_perfect_power_law(self):
        ns = [10, 100, 1000]
        values = [n**0.5 for n in ns]
        assert fit_exponent(ns, values) == pytest.approx(0.5, abs=1e-9)

    def test_constant_series_is_flat(self):
        assert fit_exponent([10, 100, 1000], [7, 7, 7]) == pytest.approx(0.0)

    def test_single_point_is_nan(self):
        assert math.isnan(fit_exponent([10], [5]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_exponent([1, 2], [1])


class TestSemiring3dPredictor:
    def test_known_values(self):
        # n = 27, q = 3: step1 load 2*81*... = 2 q^4 = 162 -> 2*ceil(162/27)=12;
        # step3 load 81 -> 2*ceil(81/27) = 6; total 18.
        assert predicted_semiring3d_rounds(27) == 18

    def test_asymptotic_exponent_is_one_third(self):
        sizes = [10**3, 20**3, 40**3, 80**3]
        rounds = [predicted_semiring3d_rounds(n) for n in sizes]
        assert fit_exponent(sizes, rounds) == pytest.approx(1 / 3, abs=0.02)

    def test_witness_words_increase_cost(self):
        base = predicted_semiring3d_rounds(64)
        with_wit = predicted_semiring3d_rounds(64, witness_words=1)
        assert with_wit > base

    def test_entry_width_scales_cost(self):
        assert predicted_semiring3d_rounds(27, entry_words_in=2) > (
            predicted_semiring3d_rounds(27)
        )


class TestBilinearPredictor:
    def test_requires_shape(self):
        with pytest.raises(ValueError):
            predicted_bilinear_rounds(49)

    def test_accepts_algorithm_or_shape(self):
        alg = strassen_power(2)
        assert predicted_bilinear_rounds(49, alg) == predicted_bilinear_rounds(
            49, d=4, m=49
        )

    def test_asymptotic_exponent_matches_strassen(self):
        # Evaluate at n = 7^(2k) where m = n exactly; the cell-padding
        # ratio ceil(q/d)/(q/d) -> 1 makes convergence to the Strassen
        # exponent slow from above, so fit the tail of a long sweep.
        sizes = [7 ** (2 * k) for k in range(4, 8)]
        rounds = []
        for n in sizes:
            level = round(math.log(n, 7))
            rounds.append(predicted_bilinear_rounds(n, d=2**level, m=7**level))
        fitted = fit_exponent(sizes, rounds)
        assert fitted == pytest.approx(RHO_IMPLEMENTED, abs=0.02)
        assert fitted < 1 / 3  # strictly beats the semiring engine

    def test_naive_predictor_linear(self):
        assert predicted_naive_rounds(64) == 64
        assert predicted_naive_rounds(64, entry_words=2) == 128

    def test_bilinear_grows_slower_than_semiring(self):
        # The Theorem 1 comparison at a size where both shapes exist.
        n = 7**6  # = 117649, also a perfect cube? No -- use predictor pair
        bil = predicted_bilinear_rounds(n, d=2**6, m=7**6)
        cube_n = 49**3  # closest cube scale
        semi = predicted_semiring3d_rounds(cube_n)
        # Compare growth, not absolute values: recompute one octave up.
        bil2 = predicted_bilinear_rounds(7**8, d=2**8, m=7**8)
        semi2 = predicted_semiring3d_rounds(98**3)
        bil_growth = math.log(bil2 / bil) / math.log(7**8 / n)
        semi_growth = math.log(semi2 / semi) / math.log((98 / 49) ** 3)
        assert bil_growth < semi_growth
