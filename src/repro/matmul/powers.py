"""Matrix powers on the clique: the iterated-squaring workhorse.

Every distance/reachability algorithm in §3 is "compute a matrix power by
repeated squaring"; the pattern lives on
:class:`~repro.engine.EngineSession` (``power``/``closure``) so downstream
users don't re-implement the loop.  This module keeps the function-style
entry points:

* :func:`matrix_power` -- ``A^k`` over any semiring via binary
  exponentiation, ``O(log k)`` products;
* :func:`closure` -- ``A^{>=1}`` summed under the semiring's addition up to
  path length ``n`` (transitive closure over the Boolean semiring, all-pairs
  distances over min-plus), ``O(log n)`` squarings.

Engine selection matches :mod:`repro.engine`: pass ``method`` (or a bound
``session``) to run rings on the fast §2.2 engine instead of the default
§2.1 semiring engine -- e.g. ``matrix_power(clique, a, k, PLUS_TIMES,
method="bilinear")`` squares through Strassen farms.
"""

from __future__ import annotations

import numpy as np

from repro.algebra.semirings import PLUS_TIMES, Semiring
from repro.clique.model import CongestedClique
from repro.engine import EngineSession


def _session(
    clique: CongestedClique,
    semiring: Semiring,
    method: str | None,
    session: EngineSession | None,
) -> EngineSession:
    if session is not None:
        if session.clique is not clique:
            raise ValueError("session is bound to a different clique")
        if session.algebra is not semiring:
            raise ValueError(
                f"session is bound to {getattr(session.algebra, 'name', '?')!r}, "
                f"not the requested semiring {semiring.name!r}"
            )
        return session
    return EngineSession(clique, method or "semiring", semiring)


def matrix_power(
    clique: CongestedClique,
    matrix: np.ndarray,
    exponent: int,
    semiring: Semiring = PLUS_TIMES,
    *,
    method: str | None = None,
    session: EngineSession | None = None,
    phase: str = "matrix-power",
) -> np.ndarray:
    """``matrix^exponent`` over a semiring, by binary exponentiation.

    ``exponent = 0`` returns the multiplicative identity pattern for the
    common semirings (1 on the diagonal for plus-times/Boolean, 0-diagonal /
    zero-elsewhere for min-plus style selection semirings).

    ``method``/``session`` select the engine (default: §2.1 semiring
    engine); ring semirings may run on the fast §2.2 engine.
    """
    return _session(clique, semiring, method, session).power(
        matrix, exponent, phase=phase
    )


def closure(
    clique: CongestedClique,
    matrix: np.ndarray,
    semiring: Semiring,
    *,
    method: str | None = None,
    session: EngineSession | None = None,
    phase: str = "closure",
) -> np.ndarray:
    """Sum of all powers up to ``n`` -- "paths of any length" semantics.

    Implemented as ``ceil(log2 n)`` squarings of ``A (+) I``-style
    accumulation: ``B <- B (x) B (+) A`` starting from ``B = A``, which
    after ``t`` steps covers all walks of length ``<= 2^t`` (paper eq. (4),
    the directed-girth recurrence, generalised to any semiring).  The input
    is converted to ``int64`` once and the session's cached plans carry all
    squarings.
    """
    return _session(clique, semiring, method, session).closure(
        matrix, absorb="matrix", phase=phase
    )


__all__ = ["matrix_power", "closure"]
