"""Prior-work baselines from Table 1 that are implementable as systems.

Dolev-Lenzen-Peled triangle counting and 4-node subgraph detection are
implemented in full (:mod:`repro.baselines.dolev`).  The remaining prior
rows (Drucker-Kuhn-Oshman ring matmul, Nanongkai's ``(2+o(1))``-APSP) are
entire papers in their own right and are represented analytically in the
Table 1 report, exactly as the paper's comparison column does.
"""

from repro.baselines.dolev import dolev_four_cycle_detect, dolev_triangle_count

__all__ = ["dolev_triangle_count", "dolev_four_cycle_detect"]
