"""The engine-session layer: binding rules, cached plans, shared loops.

An :class:`~repro.engine.EngineSession` must (a) enforce Theorem 1's
algebra/engine compatibility at construction, (b) produce the same products
as the underlying engines it binds, (c) run the iterated-squaring loops
(`power`/`closure`) that every §3 consumer shares, and (d) reuse one cached
plan across all products of a clique size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algebra.semirings import BOOLEAN, MAX_MIN, MIN_PLUS, PLUS_TIMES
from repro.clique.model import CongestedClique
from repro.constants import INF
from repro.engine import (
    EngineBindingError,
    EngineSession,
    open_session,
    required_clique_size,
)
from repro.matmul.bilinear_clique import bilinear_matmul, grid_plan
from repro.matmul.distance import RingDistanceSession
from repro.matmul.naive import broadcast_matmul
from repro.matmul.powers import closure, matrix_power
from repro.matmul.ringops import POLYNOMIAL_RING
from repro.matmul.semiring3d import cube_plan, semiring_matmul


class TestBindingRules:
    def test_selection_semiring_rejects_bilinear(self):
        clique = CongestedClique(16)
        for semiring in (MIN_PLUS, MAX_MIN):
            with pytest.raises(EngineBindingError):
                EngineSession(clique, "bilinear", semiring)

    def test_ring_ops_reject_non_bilinear_engines(self):
        for method in ("semiring", "naive"):
            with pytest.raises(EngineBindingError):
                EngineSession(CongestedClique(27), method, POLYNOMIAL_RING)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown matmul method"):
            EngineSession(CongestedClique(16), "quantum")

    def test_witnesses_need_a_selection_semiring(self):
        a = np.eye(16, dtype=np.int64)
        session = EngineSession(CongestedClique(16), "bilinear", BOOLEAN)
        with pytest.raises(EngineBindingError):
            session.multiply(a, a, with_witnesses=True)
        session = EngineSession(CongestedClique(27), "semiring", PLUS_TIMES)
        with pytest.raises(EngineBindingError):
            session.multiply(
                np.eye(27, dtype=np.int64), np.eye(27, dtype=np.int64),
                with_witnesses=True,
            )

    def test_ring_sessions_have_no_closure(self):
        session = EngineSession(CongestedClique(16), "bilinear", POLYNOMIAL_RING)
        with pytest.raises(EngineBindingError):
            session.closure(np.zeros((16, 16, 1), dtype=np.int64))

    def test_open_session_validates_shards(self):
        with pytest.raises(ValueError, match="shards"):
            open_session(10, "bilinear", shards=0)
        with pytest.raises(ValueError, match="shards"):
            open_session(10, "bilinear", shards=17)  # clique is 16
        with pytest.raises(ValueError, match="shards"):
            open_session(10, "bilinear", clique=CongestedClique(16), shards=4)

    def test_open_session_sizes_the_clique(self):
        for method in ("bilinear", "semiring", "naive"):
            session = open_session(10, method)
            assert session.n == required_clique_size(10, method)


class TestProductsMatchEngines:
    def test_integer_products_match_all_engines(self, rng):
        s = rng.integers(-9, 10, (16, 16))
        t = rng.integers(-9, 10, (16, 16))
        s27 = np.zeros((27, 27), dtype=np.int64)
        t27 = np.zeros((27, 27), dtype=np.int64)
        s27[:16, :16], t27[:16, :16] = s, t
        bil = EngineSession(CongestedClique(16), "bilinear")
        assert np.array_equal(bil.multiply(s, t), s @ t)
        sem = EngineSession(CongestedClique(27), "semiring")
        assert np.array_equal(
            sem.multiply(s27, t27),
            semiring_matmul(CongestedClique(27), s27, t27, PLUS_TIMES),
        )
        nai = EngineSession(CongestedClique(16), "naive")
        assert np.array_equal(
            nai.multiply(s, t),
            broadcast_matmul(CongestedClique(16), s, t, PLUS_TIMES),
        )

    def test_boolean_products_threshold_and_match(self, rng):
        a = (rng.random((16, 16)) < 0.4).astype(np.int64) * 7  # non-0/1 input
        b = (rng.random((16, 16)) < 0.4).astype(np.int64)
        expect = (((a > 0).astype(np.int64) @ b) > 0).astype(np.int64)
        for method, size in (("bilinear", 16), ("naive", 16), ("semiring", 27)):
            ap = np.zeros((size, size), dtype=np.int64)
            bp = np.zeros((size, size), dtype=np.int64)
            ap[:16, :16], bp[:16, :16] = a, b
            session = EngineSession(CongestedClique(size), method, BOOLEAN)
            assert np.array_equal(session.multiply(ap, bp)[:16, :16], expect)

    def test_witness_product_matches_engine(self, rng):
        d = rng.integers(0, 50, (27, 27))
        d[rng.random((27, 27)) < 0.3] = INF
        session = EngineSession(CongestedClique(27), "semiring", MIN_PLUS)
        got_p, got_w = session.multiply(d, d, with_witnesses=True)
        ref_p, ref_w = semiring_matmul(
            CongestedClique(27), d, d, MIN_PLUS, with_witnesses=True
        )
        assert np.array_equal(got_p, ref_p)
        assert np.array_equal(got_w, ref_w)

    def test_rounds_match_direct_engine_calls(self, rng):
        s = rng.integers(-9, 10, (16, 16))
        session = open_session(16, "bilinear")
        session.multiply(s, s)
        direct = CongestedClique(16)
        bilinear_matmul(direct, s, s)
        assert session.rounds == direct.rounds


class TestIteratedSquaring:
    def test_power_binary_exponentiation(self, rng):
        a = rng.integers(0, 3, (16, 16))
        session = EngineSession(CongestedClique(16), "bilinear")
        assert np.array_equal(session.power(a, 3), a @ a @ a)
        identity = session.power(a, 0)
        assert np.array_equal(identity, np.eye(16, dtype=np.int64))

    def test_power_validates_inputs(self):
        session = EngineSession(CongestedClique(16), "bilinear")
        with pytest.raises(ValueError, match="exponent"):
            session.power(np.zeros((16, 16), dtype=np.int64), -1)
        with pytest.raises(ValueError, match="matrix must be"):
            session.power(np.zeros((4, 4), dtype=np.int64), 2)

    def test_closure_reaches_transitive_closure(self):
        # Path 0 -> 1 -> 2 -> ... on the Boolean semiring.
        n = 16
        a = np.zeros((n, n), dtype=np.int64)
        a[np.arange(n - 1), np.arange(1, n)] = 1
        session = EngineSession(CongestedClique(n), "naive", BOOLEAN)
        closed = session.closure(a, absorb="matrix")
        expect = np.triu(np.ones((n, n), dtype=np.int64), k=1)
        assert np.array_equal(closed, expect)

    def test_matrix_power_and_closure_accept_ring_engines(self, rng):
        """The powers entry points can run rings on the fast §2.2 engine."""
        a = rng.integers(0, 2, (16, 16))
        clique = CongestedClique(16)
        got = matrix_power(clique, a, 4, PLUS_TIMES, method="bilinear")
        assert np.array_equal(got, np.linalg.matrix_power(a, 4))
        bool_closure = closure(
            CongestedClique(16), a, BOOLEAN, method="bilinear"
        )
        reference = closure(CongestedClique(16), a, BOOLEAN, method="naive")
        assert np.array_equal(bool_closure, reference)

    def test_closure_witness_path_needs_next_hop(self):
        session = EngineSession(CongestedClique(27), "semiring", MIN_PLUS)
        with pytest.raises(ValueError, match="next_hop"):
            session.closure(
                np.zeros((27, 27), dtype=np.int64), with_witnesses=True
            )


class TestPlanCaching:
    def test_cube_plan_memoised_across_sessions(self):
        before = cube_plan.cache_info().hits
        EngineSession(CongestedClique(27), "semiring", MIN_PLUS)
        EngineSession(CongestedClique(27), "semiring", MAX_MIN)
        assert cube_plan(27) is cube_plan(27)
        assert cube_plan.cache_info().hits > before

    def test_grid_plan_memoised_across_sessions(self):
        s1 = EngineSession(CongestedClique(49), "bilinear")
        s2 = EngineSession(CongestedClique(49), "bilinear")
        assert s1.algorithm.d == s2.algorithm.d
        assert grid_plan(49, s1.algorithm.d) is grid_plan(49, s2.algorithm.d)

    def test_cube_plan_static_decode_mask(self):
        plan = cube_plan(27)
        # Every node receives exactly q^2 S pieces and q^2 T pieces.
        assert plan.from_s.sum(axis=1).tolist() == [9] * 27
        assert plan.dests1.shape == (27, 18)


class TestRingDistanceSession:
    def test_lemma18_session_multiply_and_closure(self, rng):
        n = 16
        d = rng.integers(1, 5, (n, n))
        d[rng.random((n, n)) < 0.5] = INF
        np.fill_diagonal(d, 0)
        session = RingDistanceSession(CongestedClique(n), max_entry=8)
        product = session.multiply(d, d)
        # Oracle: capped min-plus product.
        capped = np.where(d <= 8, d, INF)
        expect = MIN_PLUS.cube_matmul_with_witness(capped, capped)[0]
        expect = np.where(expect <= 16, expect, INF)
        assert np.array_equal(np.where(product <= 16, product, INF), expect)

    def test_lemma18_session_rejects_witnesses(self):
        session = RingDistanceSession(CongestedClique(16), max_entry=4)
        with pytest.raises(EngineBindingError):
            session.multiply(
                np.zeros((16, 16), dtype=np.int64),
                np.zeros((16, 16), dtype=np.int64),
                with_witnesses=True,
            )
