#!/usr/bin/env python
"""A miniature Table 1: round scaling of the core engines.

Sweeps clique sizes, measures rounds for the semiring engine, the bilinear
engine, the naive baseline and Theorem 4's flat detector, then prints the
fitted growth exponents next to the paper's bounds.

Run: ``python examples/scaling_study.py [--small]``.
"""

from __future__ import annotations

import sys

import numpy as np

from repro import CongestedClique, RHO_IMPLEMENTED
from repro.graphs import bipartite_random_graph
from repro.matmul.bilinear_clique import bilinear_matmul, default_algorithm
from repro.matmul.exponent import fit_exponent
from repro.matmul.naive import broadcast_matmul
from repro.matmul.semiring3d import semiring_matmul
from repro.subgraphs import detect_four_cycles


def _sweep(sizes, run):
    rounds = []
    for n in sizes:
        rounds.append(run(n))
    return rounds


def main() -> int:
    small = "--small" in sys.argv
    cube_sizes = [27, 64] if small else [27, 64, 125, 216]
    square_sizes = [16, 49] if small else [16, 49, 100, 196]
    flat_sizes = [16, 32, 64] if small else [16, 32, 64, 128, 256]
    rng = np.random.default_rng(0)

    def semiring_run(n):
        s = rng.integers(0, 10, (n, n), dtype=np.int64)
        clique = CongestedClique(n)
        semiring_matmul(clique, s, s)
        return clique.rounds

    def bilinear_run(n):
        s = rng.integers(0, 10, (n, n), dtype=np.int64)
        clique = CongestedClique(n)
        bilinear_matmul(clique, s, s, default_algorithm(n))
        return clique.rounds

    def naive_run(n):
        s = rng.integers(0, 10, (n, n), dtype=np.int64)
        clique = CongestedClique(n)
        broadcast_matmul(clique, s, s)
        return clique.rounds

    def c4_run(n):
        g = bipartite_random_graph(n, 4.0 / n, seed=n)
        return detect_four_cycles(g).rounds

    rows = [
        ("semiring 3D matmul", cube_sizes, _sweep(cube_sizes, semiring_run), "1/3"),
        (
            "bilinear (Strassen) matmul",
            square_sizes,
            _sweep(square_sizes, bilinear_run),
            f"{RHO_IMPLEMENTED:.3f} (0.158 w/ Le Gall)",
        ),
        ("naive broadcast matmul", cube_sizes, _sweep(cube_sizes, naive_run), "1"),
        ("4-cycle detection (Thm 4)", flat_sizes, _sweep(flat_sizes, c4_run), "0"),
    ]

    print(f"{'algorithm':28s} {'sizes / rounds':42s} {'fit':>7s}  paper")
    print("-" * 100)
    for name, sizes, rounds, bound in rows:
        pairs = "  ".join(f"{n}:{r}" for n, r in zip(sizes, rounds))
        print(f"{name:28s} {pairs:42s} {fit_exponent(sizes, rounds):+7.3f}  n^{bound}")
    print("\n(fits at small n carry quantisation noise; the benchmark suite")
    print(" also checks the exact predictors -- see EXPERIMENTS.md)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
