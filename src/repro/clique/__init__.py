"""Congested-clique simulation substrate.

The paper's model: ``n`` nodes, a complete communication graph, synchronous
rounds, one ``O(log n)``-bit message per ordered node pair per round.  This
subpackage provides the metered simulator (:class:`CongestedClique`), the
cost accounting, and the routing/scheduling machinery (Lenzen routing via
Koenig edge colouring) that every algorithm in the reproduction runs on.
"""

from repro.clique.accounting import CostMeter, PhaseCost
from repro.clique.arena import ExchangeArena
from repro.clique.executor import (
    SERIAL_EXECUTOR,
    LocalExecutor,
    SerialExecutor,
    ShardedExecutor,
    make_executor,
)
from repro.clique.messages import (
    default_word_bits,
    int_bits,
    words_for_array,
    words_for_value,
)
from repro.clique.model import CongestedClique, ScheduleMode

__all__ = [
    "CongestedClique",
    "ScheduleMode",
    "CostMeter",
    "PhaseCost",
    "ExchangeArena",
    "LocalExecutor",
    "SerialExecutor",
    "ShardedExecutor",
    "SERIAL_EXECUTOR",
    "make_executor",
    "default_word_bits",
    "int_bits",
    "words_for_array",
    "words_for_value",
]
