"""E7 -- Table 1 "girth": O~(n^rho); the first algorithm in this model.

Covers both Theorem 15 branches (sparse: learn the graph in O(m/n) rounds;
dense: colour-coding detection) plus the directed Corollary 16.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distances import girth_directed, girth_undirected
from repro.graphs import (
    cycle_graph,
    cycle_with_trees,
    dense_small_girth_graph,
    girth_reference,
    gnp_random_graph,
)

from .conftest import run_once


@pytest.mark.parametrize("n", [25, 64, 121, 225])
def test_girth_sparse_branch(benchmark, n):
    g = cycle_with_trees(n, 7, seed=n)

    def run():
        return girth_undirected(g)

    result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = result.rounds
    benchmark.extra_info["branch"] = result.extras["branch"]
    assert result.value == 7


@pytest.mark.parametrize("n", [16, 25, 36])
def test_girth_dense_branch(benchmark, n):
    g = dense_small_girth_graph(n, seed=n)

    def run():
        return girth_undirected(
            g, trials_per_k=10, rng=np.random.default_rng(n)
        )

    result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = result.rounds
    benchmark.extra_info["branch"] = result.extras["branch"]
    assert result.value == girth_reference(g)


@pytest.mark.parametrize("n", [15, 31, 63])
def test_girth_directed(benchmark, n):
    g = cycle_graph(n, directed=True)

    def run():
        return girth_directed(g)

    result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = result.rounds
    benchmark.extra_info["boolean_products"] = result.extras["boolean_products"]
    assert result.value == n


def test_girth_directed_random(benchmark):
    g = gnp_random_graph(36, 0.12, seed=9, directed=True)

    def run():
        return girth_directed(g)

    result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = result.rounds
    assert result.value == girth_reference(g)
