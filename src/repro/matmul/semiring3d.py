"""The 3D semiring matrix multiplication algorithm (paper §2.1, Theorem 1).

Computes ``P = S T`` over any semiring on a congested clique of ``n = q^3``
nodes in ``O(n^{1/3})`` rounds.  The ``n^3`` elementary products are viewed
as the cube ``V x V x V``, partitioned into ``n`` subcubes of side
``n^{2/3}``; node ``v = v1 v2 v3`` computes the block product

    ``P^{(v2)}[v1**, v3**] = S[v1**, v2**] . T[v2**, v3**]``

and the partial products are recombined with semiring addition.  The
communication pattern is oblivious (input-independent), matching the paper's
observation that the static routing of Dolev et al. suffices.

Input/output convention (paper §2): node ``v`` initially holds row ``v`` of
both ``S`` and ``T``, and finally holds row ``v`` of ``P``.  The simulator
passes full matrices for convenience, but every step below only touches the
rows a node legitimately owns or has received.

For selection semirings (min-plus, max-min) the algorithm optionally returns
a *witness matrix*: ``W[u, v]`` is an inner index attaining ``P[u, v]``,
which §3.3 turns into routing tables.  Witnesses ride along with the data
(doubling payload width) and fall out of the local block products for free,
exactly because the semiring engine takes arg-min locally.

Implementation note: both exchanges run on the simulator's **array-native
fast path** (:meth:`~repro.clique.model.CongestedClique.route_array`).
Every piece §2.1 ships is a contiguous ``q^2``-entry row slice, so each
step's whole traffic is three NumPy arrays (destinations, stacked pieces,
widths) instead of ``O(n^{4/3})`` Python tuples; the charged round counts
are bit-identical to the tuple formulation (see the equivalence tests).
"""

from __future__ import annotations

import numpy as np

from repro.algebra.semirings import PLUS_TIMES, Semiring
from repro.clique.messages import block_widths, words_for_value
from repro.clique.model import CongestedClique
from repro.matmul.layout import CubeLayout

#: Slack multiplier on the asserted per-node load bounds: the analysis bound
#: is 2 n^{4/3} *entries*; the width in words multiplies it, and padding can
#: add a little, so algorithms assert with a factor-4 safety margin (a true
#: implementation bug overshoots by far more).
_LOAD_SLACK = 4

#: Piece tags for the step-1 exchange (uncharged metadata, standing in for
#: the ``("S", ...)`` / ``("T", ...)`` tuple headers of the old path).
_TAG_S = 0
_TAG_T = 1


def semiring_matmul(
    clique: CongestedClique,
    s: np.ndarray,
    t: np.ndarray,
    semiring: Semiring = PLUS_TIMES,
    *,
    with_witnesses: bool = False,
    phase: str = "semiring3d",
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Multiply ``n x n`` matrices over a semiring in ``O(n^{1/3})`` rounds.

    Args:
        clique: an ``n``-node clique with ``n`` a perfect cube (pad with
            :func:`repro.matmul.layout.next_cube` otherwise).
        s: left operand, ``int64``, row ``v`` owned by node ``v``.
        t: right operand, same convention.
        semiring: the semiring to multiply over (default: integer ring --
            which §2.1 also covers, just without the §2.2 speedup).
        with_witnesses: if set (selection semirings only), also return the
            witness matrix ``W`` with ``P[u,v] = S[u, W[u,v]] (x) T[W[u,v], v]``.
        phase: cost-meter label prefix.

    Returns:
        ``P``, or ``(P, W)`` when ``with_witnesses`` is set.
    """
    n = clique.n
    layout = CubeLayout.for_clique(n)
    q = layout.q
    s = np.ascontiguousarray(np.asarray(s, dtype=np.int64))
    t = np.ascontiguousarray(np.asarray(t, dtype=np.int64))
    if s.shape != (n, n) or t.shape != (n, n):
        raise ValueError(f"operands must be {n} x {n} matrices")
    if with_witnesses and not semiring.has_witnesses:
        raise ValueError(f"semiring {semiring.name} does not support witnesses")
    word_bits = clique.word_bits
    q2 = q * q

    # ---------------- Step 1: distribute the entries. ------------------- #
    # Node v sends S[v, u2**] to each u in v1** and T[v, w3**] to each w in
    # *v1* (i.e. w2 = v1), so that node u assembles S[u1**, u2**] and
    # T[u2**, u3**].  Each node ships 2 q^2 submatrices of q^2 entries:
    # 2 n^{4/3} words at unit width.  All pieces are q^2-entry row slices,
    # so the whole step is one array-native routed exchange.
    v1_of = np.arange(n, dtype=np.int64) // q2
    s3 = s.reshape(n, q, q2)  # s3[v, u2] = S[v, u2**]
    t3 = t.reshape(n, q, q2)  # t3[v, w3] = T[v, w3**]

    # Destinations, in the tuple path's emission order (S pieces by
    # (u2, u3), then T pieces by (w1, w3)).
    s_dests = v1_of[:, None] * q2 + np.arange(q2, dtype=np.int64)[None, :]
    w1w3 = (
        np.arange(q, dtype=np.int64)[:, None] * q2
        + np.arange(q, dtype=np.int64)[None, :]
    ).reshape(-1)
    t_dests = (v1_of * q)[:, None] + w1w3[None, :]
    dests = np.concatenate([s_dests, t_dests], axis=1)  # (n, 2 q^2)

    # Pieces: each S slice goes to q destinations, each T slice to q.
    s_pieces = np.repeat(s3, q, axis=1)  # (n, q^2, q^2), row (u2 q + u3)
    t_pieces = np.tile(t3, (1, q, 1))  # (n, q^2, q^2), row (w1 q + w3)
    pieces = np.concatenate([s_pieces, t_pieces], axis=1)

    # Honest per-piece widths: size * words-for-max-abs, per q^2-slice.
    s_widths = np.repeat(
        block_widths(s3.reshape(n * q, q2), word_bits).reshape(n, q), q, axis=1
    )
    t_widths = np.tile(
        block_widths(t3.reshape(n * q, q2), word_bits).reshape(n, q), (1, q)
    )
    widths = np.concatenate([s_widths, t_widths], axis=1)

    tags = np.empty((n, 2 * q2), dtype=np.int64)
    tags[:, :q2] = _TAG_S
    tags[:, q2:] = _TAG_T

    max_abs = max(
        int(np.max(np.abs(s))) if s.size else 0,
        int(np.max(np.abs(t))) if t.size else 0,
    )
    max_entry_words = words_for_value(max_abs, word_bits)
    inboxes = clique.route_array(
        list(dests),
        list(pieces),
        widths=list(widths),
        tags=list(tags),
        phase=f"{phase}/step1-distribute",
        expect_max_load=_LOAD_SLACK * 2 * q2 * q2 * max_entry_words,
    )

    # ---------------- Step 2: local block products. --------------------- #
    products: list[np.ndarray] = []
    witness_blocks: list[np.ndarray | None] = []
    for v in range(n):
        v1, v2, _v3 = layout.digits(v)
        s_base, _ = layout.first_digit_range(v1)
        t_base, _ = layout.first_digit_range(v2)
        inbox = inboxes[v]
        from_s = inbox.tags == _TAG_S
        s_block = semiring.zeros((q2, q2))
        t_block = semiring.zeros((q2, q2))
        s_block[inbox.sources[from_s] - s_base] = inbox.blocks[from_s]
        t_block[inbox.sources[~from_s] - t_base] = inbox.blocks[~from_s]
        if with_witnesses:
            prod, wit = semiring.matmul_with_witness(s_block, t_block)
            k_base, _ = layout.first_digit_range(v2)
            witness_blocks.append(wit + k_base)  # local k -> global node id
        else:
            prod = semiring.matmul(s_block, t_block)
            witness_blocks.append(None)
        products.append(prod)

    # ---------------- Step 3: distribute the partial products. ---------- #
    # Node v holds P^{(v2)}[v1**, v3**]; it sends row u's slice to node u
    # for each u in v1**.  n^{4/3} words each way (x2 with witnesses).
    witness_words = words_for_value(n, word_bits)
    row_ids = np.arange(q2, dtype=np.int64)
    dests3: list[np.ndarray] = []
    blocks3: list[np.ndarray] = []
    widths3: list[np.ndarray] = []
    for v in range(n):
        v1, _v2, _v3 = layout.digits(v)
        base, _ = layout.first_digit_range(v1)
        prod = products[v]
        row_widths = block_widths(prod, word_bits)
        dests3.append(base + row_ids)
        if with_witnesses:
            # Ship each product row with its witness row as one (2, q^2)
            # piece; the witness half is charged at witness_words/entry.
            blocks3.append(np.stack([prod, witness_blocks[v]], axis=1))
            widths3.append(row_widths + q2 * witness_words)
        else:
            blocks3.append(prod)
            widths3.append(row_widths)
    inboxes = clique.route_array(
        dests3,
        blocks3,
        widths=widths3,
        phase=f"{phase}/step3-recombine",
        expect_max_load=_LOAD_SLACK
        * q2
        * q2
        * (max_entry_words + (witness_words if with_witnesses else 0)),
    )

    # ---------------- Step 4: assemble the result rows. ----------------- #
    p = semiring.zeros((n, n))
    w_out = np.full((n, n), -1, dtype=np.int64) if with_witnesses else None
    for v in range(n):
        inbox = inboxes[v]
        # Sender u = (u1, u2, u3) contributed the slot (w2 = u2, cols u3**).
        u2s = (inbox.sources // q) % q
        u3s = inbox.sources % q
        row3 = semiring.zeros((q, q, q2))  # one slot per middle digit w2
        if with_witnesses:
            row_wit3 = np.zeros((q, q, q2), dtype=np.int64)
            row3[u2s, u3s] = inbox.blocks[:, 0]
            row_wit3[u2s, u3s] = inbox.blocks[:, 1]
            row = row3.reshape(q, n)
            row_wit = row_wit3.reshape(q, n)
            acc, acc_w = row[0], row_wit[0]
            for w2 in range(1, q):
                acc, acc_w = semiring.add_with_witness(
                    acc, acc_w, row[w2], row_wit[w2]
                )
            p[v] = acc
            w_out[v] = acc_w
        else:
            row3[u2s, u3s] = inbox.blocks
            row = row3.reshape(q, n)
            acc = row[0]
            for w2 in range(1, q):
                acc = semiring.add(acc, row[w2])
            p[v] = acc
    if with_witnesses:
        return p, w_out
    return p


__all__ = ["semiring_matmul"]
