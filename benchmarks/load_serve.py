#!/usr/bin/env python
"""Load harness for the serving layer: N concurrent clients, one server.

Spins a :class:`~repro.serve.BatchingServer` over an existing closure
artifact, drives it with ``clients`` concurrent JSON-lines connections
issuing ``requests_per_client`` queries each, and reports wall-clock
throughput plus client-observed latency percentiles:

    {"requests", "seconds", "qps", "p50_ms", "p99_ms",
     "mean_batch", "largest_batch", "batches"}

:func:`run_load` is importable (the perf report's ``serve`` section and
``tests/test_serve.py`` both call it); the CLI wraps it::

    python benchmarks/load_serve.py ARTIFACT --clients 16 --requests 200
"""

from __future__ import annotations

import argparse
import asyncio
import json
from pathlib import Path

import numpy as np

from repro.serve import BatchingServer, ClosureArtifact, QueryEngine
from repro.serve.app import request_line


async def _client(
    host: str,
    port: int,
    n: int,
    requests: int,
    op: str,
    seed: int,
    latencies: list,
) -> None:
    rng = np.random.default_rng(seed)
    loop = asyncio.get_running_loop()
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for _ in range(requests):
            u, v = (int(x) for x in rng.integers(0, n, 2))
            payload = {"op": op, "u": u}
            if op != "ecc":
                payload["v"] = v
            start = loop.time()
            reply = await request_line(reader, writer, payload)
            latencies.append(loop.time() - start)
            if not reply.get("ok"):
                raise RuntimeError(f"server error: {reply.get('error')}")
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def _run(
    engine: QueryEngine,
    *,
    clients: int,
    requests_per_client: int,
    window: float,
    op: str,
    seed: int,
) -> dict:
    server = BatchingServer(engine, window=window)
    host, port = await server.start()
    latencies: list[float] = []
    loop = asyncio.get_running_loop()
    start = loop.time()
    try:
        await asyncio.gather(
            *(
                _client(
                    host,
                    port,
                    engine.n,
                    requests_per_client,
                    op,
                    seed + i,
                    latencies,
                )
                for i in range(clients)
            )
        )
    finally:
        elapsed = loop.time() - start
        await server.close()
    lat_ms = np.array(latencies) * 1000.0
    stats = server.stats.as_dict()
    return {
        "requests": len(latencies),
        "seconds": round(elapsed, 4),
        "qps": round(len(latencies) / elapsed, 1) if elapsed else 0.0,
        "p50_ms": round(float(np.percentile(lat_ms, 50)), 3),
        "p99_ms": round(float(np.percentile(lat_ms, 99)), 3),
        "mean_batch": stats["mean_batch"],
        "largest_batch": stats["largest_batch"],
        "batches": stats["batches"],
    }


def run_load(
    artifact_path,
    *,
    clients: int = 8,
    requests_per_client: int = 100,
    window: float = 0.001,
    op: str = "dist",
    seed: int = 0,
) -> dict:
    """Open ``artifact_path``, serve it, and hammer it; returns the stats."""
    engine = QueryEngine(ClosureArtifact.open(Path(artifact_path)))
    return asyncio.run(
        _run(
            engine,
            clients=clients,
            requests_per_client=requests_per_client,
            window=window,
            op=op,
            seed=seed,
        )
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifact", help="closure artifact directory")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--requests", type=int, default=100, help="requests per client"
    )
    parser.add_argument("--window", type=float, default=0.001)
    parser.add_argument(
        "--op", choices=("dist", "path", "ecc"), default="dist"
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    result = run_load(
        args.artifact,
        clients=args.clients,
        requests_per_client=args.requests,
        window=args.window,
        op=args.op,
        seed=args.seed,
    )
    print(json.dumps(result, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
