"""k-path detection via colour coding -- the classic companion to Theorem 3.

Colour coding (Alon-Yuster-Zwick [5]) was invented for *paths*; the paper
uses it for cycles (Lemma 11).  The path variant reuses the identical
machinery: a colourful k-path exists iff ``C([k])[u, v] = 1`` for *any*
pair -- no closing edge required -- so detection costs the same
``2^{O(k)} n^rho log n`` rounds and inherits the same certificate
semantics (positives are sound; completeness w.h.p. under the
``e^k ln(1/eps)`` trial budget).

Included as a worked example of the conclusion's claim that the matmul
toolbox extends to further centralised techniques without new machinery.
"""

from __future__ import annotations

import math

import numpy as np

from repro.clique.model import CongestedClique, ScheduleMode
from repro.graphs.graphs import Graph
from repro.runtime import (
    RunResult,
    make_clique,
    or_broadcast,
    pad_matrix,
    resolve_rng,
)
from repro.subgraphs.colour_coding import default_trials

# Reuse the Lemma 11 recursion internals for the C(X) matrices.
from repro.subgraphs import colour_coding as _cc


def detect_colourful_path(
    clique: CongestedClique,
    adjacency: np.ndarray,
    colours: np.ndarray,
    k: int,
    *,
    method: str = "bilinear",
    phase: str = "colour-path",
) -> bool:
    """Is there a simple path on ``k`` nodes using each colour exactly once?

    Identical recursion to :func:`~repro.subgraphs.colour_coding
    .detect_colourful_cycle`, with the final certificate being any non-zero
    entry of ``C([k])`` instead of one closed by an edge.
    """
    if k < 2:
        raise ValueError(f"path detection needs k >= 2, got {k}")
    n = clique.n
    a = (np.asarray(adjacency) > 0).astype(np.int64)
    clique.broadcast(list(colours), words=1, phase=f"{phase}/colours")

    # Build C([k]) through the same memoised half-split recursion the cycle
    # detector uses; it depends only on the colour masks and the adjacency.
    full = _build_c_full(clique, a, colours, k, method, phase)
    local_hits = [bool(full[u].any()) for u in range(n)]
    return or_broadcast(clique, local_hits, phase=f"{phase}/verdict")


def _build_c_full(
    clique: CongestedClique,
    a: np.ndarray,
    colours: np.ndarray,
    k: int,
    method: str,
    phase: str,
) -> np.ndarray:
    """Compute ``C([k])`` (paper eq. (3)) -- shared with the cycle detector."""
    from itertools import combinations

    from repro.algebra.semirings import BOOLEAN
    from repro.engine import EngineSession

    session = EngineSession(clique, method, BOOLEAN)
    n = clique.n
    colour_mask = [colours == i for i in range(k)]
    memo: dict[frozenset[int], np.ndarray] = {}

    def cmat(x: frozenset[int]) -> np.ndarray:
        if x in memo:
            return memo[x]
        size = len(x)
        if size == 1:
            (i,) = x
            mat = np.zeros((n, n), dtype=np.int64)
            idx = np.nonzero(colour_mask[i])[0]
            mat[idx, idx] = 1
        elif size == 2:
            i, j = sorted(x)
            mat = np.zeros((n, n), dtype=np.int64)
            for left, right in ((i, j), (j, i)):
                mat |= a * colour_mask[left][:, None] * colour_mask[right][None, :]
        else:
            half = math.ceil(size / 2)
            acc = np.zeros((n, n), dtype=np.int64)
            for y_tuple in combinations(sorted(x), half):
                y = frozenset(y_tuple)
                z = x - y
                left, right = cmat(y), cmat(z)
                if len(z) == 1:
                    (zc,) = z
                    term = session.multiply(
                        left, a * colour_mask[zc][None, :], phase=f"{phase}/prod"
                    )
                elif len(y) == 1:
                    (yc,) = y
                    term = session.multiply(
                        a * colour_mask[yc][:, None], right, phase=f"{phase}/prod"
                    )
                else:
                    t1 = session.multiply(left, a, phase=f"{phase}/prod")
                    term = session.multiply(t1, right, phase=f"{phase}/prod")
                acc |= term
            mat = acc
        memo[x] = mat
        return mat

    return cmat(frozenset(range(k)))


def detect_k_path(
    graph: Graph,
    k: int,
    *,
    method: str = "bilinear",
    trials: int | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = 0,
    clique: CongestedClique | None = None,
    mode: ScheduleMode = ScheduleMode.FAST,
    failure_probability: float = 0.01,
) -> RunResult:
    """Detect a simple path on ``k`` nodes, w.h.p., in 2^{O(k)} n^rho log n rounds.

    Randomness resolution is :func:`repro.runtime.resolve_rng`:
    deterministic by default, ``seed=None`` for the advancing shared stream.
    """
    if k < 2:
        raise ValueError(f"path detection needs k >= 2, got {k}")
    rng = resolve_rng(rng, seed)
    clique = clique or make_clique(graph.n, method, mode=mode)
    a = pad_matrix(graph.adjacency, clique.n)
    budget = trials if trials is not None else max(
        1, math.ceil(math.exp(k) * math.log(1.0 / failure_probability))
    )
    used = 0
    found = False
    for _ in range(budget):
        used += 1
        colours = rng.integers(0, k, size=clique.n)
        if detect_colourful_path(
            clique, a, colours, k, method=method, phase=f"kpath{k}"
        ):
            found = True
            break
    return RunResult(
        value=found,
        rounds=clique.rounds,
        clique_size=clique.n,
        meter=clique.meter,
        extras={"trials_used": used, "trial_budget": budget, "k": k},
    )


__all__ = ["detect_k_path", "detect_colourful_path", "default_trials"]
