"""Fast (bilinear) matrix multiplication on the clique (paper §2.2, Lemma 10).

Given any bilinear algorithm ``<d, d, d; m>`` with ``m <= n``, computes the
ring product ``P = S T`` on an ``n = q^2``-node clique in ``O(n^{1 - 2/sigma})``
rounds, where ``m = O(d^sigma)``.  The matrices are viewed as ``d x d`` block
matrices over the ring of ``(M/d) x (M/d)`` matrices; the bilinear
algorithm's ``m`` block products are farmed out one per node; the encode /
decode linear combinations (equations (1) and (2)) are computed locally
under a two-level partition in which node ``(x1, x2)`` owns cell
``(x1, x2)`` of every block (the paper's Figure 2).

Deviations from the paper's indexing, and why they are harmless:

* The paper takes a mixed-radix node id ``v1 v2 v3`` with ``v1 in [d]``,
  which needs ``d | sqrt(n)``.  We instead pad the *matrix* to
  ``M = d * q * c`` with ``c = ceil(q / d)`` and use the plain label
  ``(v div q, v mod q)``; padded rows/columns are identically zero and are
  materialised locally by receivers, so they cost no communication and only
  inflate local arithmetic by a ``(1 + d/q)^2`` factor.
* Strassen's algorithm (sigma = log2 7) stands in for the asymptotically
  best known bilinear algorithms, so the exponent realised by the running
  code is ``1 - 2/log2(7) ~ 0.2876`` rather than the paper's headline
  ``0.158`` (see DESIGN.md).

The algorithm is generic over :class:`repro.matmul.ringops.RingOps`; with
:data:`~repro.matmul.ringops.POLYNOMIAL_RING` it implements the Lemma 18
embedding (entries become coefficient vectors and widths are charged with
the ``O(M)`` blow-up).
"""

from __future__ import annotations

import numpy as np

from repro.algebra.bilinear import (
    BilinearAlgorithm,
    largest_strassen_level,
    strassen_power,
)
from repro.clique.model import CongestedClique
from repro.errors import CliqueSizeError
from repro.matmul.layout import GridLayout
from repro.matmul.ringops import INTEGER_RING, RingOps

_LOAD_SLACK = 4


def default_algorithm(n: int) -> BilinearAlgorithm:
    """The deepest Strassen power whose product count fits the clique."""
    return strassen_power(largest_strassen_level(n))


def bilinear_matmul(
    clique: CongestedClique,
    s: np.ndarray,
    t: np.ndarray,
    algorithm: BilinearAlgorithm | None = None,
    *,
    ring: RingOps = INTEGER_RING,
    phase: str = "bilinear",
) -> np.ndarray:
    """Multiply over a ring with a bilinear algorithm (Theorem 1, ring part).

    Args:
        clique: an ``n``-node clique with ``n`` a perfect square.
        s: left operand, shape ``(n, n)`` (+ trailing ring axes); row ``v``
            owned by node ``v``.
        t: right operand, same convention.
        algorithm: the bilinear algorithm to deploy; defaults to the deepest
            Strassen power with ``7^l <= n``.
        ring: local block arithmetic and word-width rules.
        phase: cost-meter label prefix.

    Returns:
        ``P = S T`` with the same shape convention as the inputs.
    """
    n = clique.n
    if algorithm is None:
        algorithm = default_algorithm(n)
    if algorithm.m > n:
        raise CliqueSizeError(
            f"bilinear algorithm {algorithm.name} needs m={algorithm.m} <= n={n}"
        )
    layout = GridLayout.for_clique(n, algorithm.d)
    q, d, c, mm = layout.q, layout.d, layout.c, layout.m_padded
    trailing = np.asarray(s).shape[2:]
    if np.asarray(s).shape[:2] != (n, n) or np.asarray(t).shape[:2] != (n, n):
        raise ValueError(f"operands must be {n} x {n} (+ ring axes)")
    word_bits = clique.word_bits

    sp = np.zeros((mm, mm) + trailing, dtype=np.int64)
    tp = np.zeros((mm, mm) + trailing, dtype=np.int64)
    sp[:n, :n] = s
    tp[:n, :n] = t

    cols_of = [layout.indices_of_cell_axis(x2) for x2 in range(q)]

    # -------- Step 1: distribute the entries (2 M words per node). ------ #
    outboxes: list[list[tuple[int, object, int]]] = [[] for _ in range(n)]
    for v in range(n):
        i, x1, tt = layout.row_position(v)
        for x2 in range(q):
            dest = layout.node_of_label(x1, x2)
            s_piece = sp[v, cols_of[x2]]
            t_piece = tp[v, cols_of[x2]]
            width = ring.array_words(s_piece, word_bits) + ring.array_words(
                t_piece, word_bits
            )
            outboxes[v].append((dest, (v, s_piece, t_piece), max(1, width)))
    entry_w = max(
        1, ring.entry_words(sp, word_bits), ring.entry_words(tp, word_bits)
    )
    inboxes = clique.route(
        outboxes,
        phase=f"{phase}/step1-distribute",
        expect_max_load=_LOAD_SLACK * 2 * mm * mm // q * entry_w,
    )

    # Assemble the local cell grid LS/LT[i, j] in (d, d, c, c, ...) layout.
    block_rows = c * q
    local_s: list[np.ndarray] = [None] * n  # type: ignore[list-item]
    local_t: list[np.ndarray] = [None] * n  # type: ignore[list-item]
    for u in range(n):
        ls = np.zeros((d, d, c, c) + trailing, dtype=np.int64)
        lt = np.zeros((d, d, c, c) + trailing, dtype=np.int64)
        for _src, (v, s_piece, t_piece) in inboxes[u]:
            i = v // block_rows
            tt = (v % block_rows) % c
            ls[i, :, tt, :] = s_piece.reshape((d, c) + trailing)
            lt[i, :, tt, :] = t_piece.reshape((d, c) + trailing)
        local_s[u] = ls
        local_t[u] = lt

    # -------- Step 2: encode (equation (1)) -- local. ------------------- #
    enc_a, enc_b = algorithm.encode_matrices()
    m = algorithm.m
    s_hats: list[np.ndarray] = []
    t_hats: list[np.ndarray] = []
    for u in range(n):
        flat_s = local_s[u].reshape((d * d,) + (c, c) + trailing)
        flat_t = local_t[u].reshape((d * d,) + (c, c) + trailing)
        s_hats.append(np.tensordot(enc_a, flat_s, axes=1))
        t_hats.append(np.tensordot(enc_b, flat_t, axes=1))

    # -------- Step 3: distribute the linear combinations. --------------- #
    # Node (x1, x2) sends cell (x1, x2) of S^(w), T^(w) to node w;
    # O(n^{2-2/sigma}) words per node.
    outboxes = [[] for _ in range(n)]
    for u in range(n):
        for w in range(m):
            s_cell = s_hats[u][w]
            t_cell = t_hats[u][w]
            width = ring.array_words(s_cell, word_bits) + ring.array_words(
                t_cell, word_bits
            )
            outboxes[u].append((w, (u, s_cell, t_cell), max(1, width)))
    hat_entry_w = max(
        max(ring.entry_words(sh, word_bits) for sh in s_hats),
        max(ring.entry_words(th, word_bits) for th in t_hats),
    )
    inboxes = clique.route(
        outboxes,
        phase=f"{phase}/step3-scatter-hats",
        expect_max_load=_LOAD_SLACK * 2 * max(m * c * c, q * c * q * c) * hat_entry_w,
    )

    # -------- Step 4: the m block products -- local at nodes w < m. ----- #
    side = q * c
    p_hat_full: list[np.ndarray | None] = [None] * n
    for w in range(m):
        s_full = np.zeros((side, side) + trailing, dtype=np.int64)
        t_full = np.zeros((side, side) + trailing, dtype=np.int64)
        for _src, (u, s_cell, t_cell) in inboxes[w]:
            x1, x2 = layout.label(u)
            s_full[x1 * c : (x1 + 1) * c, x2 * c : (x2 + 1) * c] = s_cell
            t_full[x1 * c : (x1 + 1) * c, x2 * c : (x2 + 1) * c] = t_cell
        p_hat_full[w] = ring.matmul(s_full, t_full)
    # Ring products may widen the entry representation (the polynomial ring's
    # degree grows under convolution), so downstream buffers use the output
    # trailing shape.
    trailing_out = p_hat_full[0].shape[2:]

    # -------- Step 5: scatter the products back to cell owners. --------- #
    outboxes = [[] for _ in range(n)]
    for w in range(m):
        prod = p_hat_full[w]
        for u in range(n):
            x1, x2 = layout.label(u)
            cell = prod[x1 * c : (x1 + 1) * c, x2 * c : (x2 + 1) * c]
            width = ring.array_words(cell, word_bits)
            outboxes[w].append((u, (w, cell), max(1, width)))
    prod_entry_w = max(
        ring.entry_words(p, word_bits) for p in p_hat_full if p is not None
    )
    inboxes = clique.route(
        outboxes,
        phase=f"{phase}/step5-scatter-products",
        expect_max_load=_LOAD_SLACK
        * max(m * c * c, side * side)
        * prod_entry_w,
    )

    # -------- Step 6: decode (equation (2)) -- local. ------------------- #
    dec = algorithm.decode_matrix()  # (d*d, m)
    p_cells: list[np.ndarray] = [None] * n  # type: ignore[list-item]
    for u in range(n):
        stack = np.zeros((m, c, c) + trailing_out, dtype=np.int64)
        for _src, (w, cell) in inboxes[u]:
            stack[w] = cell
        cells = np.tensordot(dec, stack, axes=1)
        p_cells[u] = cells.reshape((d, d, c, c) + trailing_out)

    # -------- Step 7: re-assemble rows at their owners. ------------------ #
    outboxes = [[] for _ in range(n)]
    for u in range(n):
        x1, x2 = layout.label(u)
        for i in range(d):
            for tt in range(c):
                r = i * block_rows + x1 * c + tt
                if r >= n:
                    continue
                piece = p_cells[u][i, :, tt, :]
                width = ring.array_words(piece, word_bits)
                outboxes[u].append((r, (x2, piece), max(1, width)))
    inboxes = clique.route(
        outboxes,
        phase=f"{phase}/step7-assemble",
        expect_max_load=_LOAD_SLACK * (mm // q) * mm * prod_entry_w,
    )

    p = np.zeros((n, n) + trailing_out, dtype=np.int64)
    for v in range(n):
        row = np.zeros((mm,) + trailing_out, dtype=np.int64)
        for _src, (x2, piece) in inboxes[v]:
            row[cols_of[x2]] = piece.reshape((d * c,) + trailing_out)
        p[v] = row[:n]
    return p


__all__ = ["bilinear_matmul", "default_algorithm"]
