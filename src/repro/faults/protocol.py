"""Replication-coded robust collectives: detect, retry, degrade.

:class:`RobustClique` re-implements the array collectives of
:class:`~repro.clique.model.CongestedClique` as ``c = 2T + 1``-way
replication codes over pairwise-distinct relays
(:func:`repro.clique.scheduling.disjoint_relays`), decoded by supported
majority (:func:`repro.faults.encoding.majority_decode`).  The protocol per
exchange:

1. **encode/ship**: every piece travels ``c`` times through ``c`` distinct
   relay nodes; the redundancy is charged *honestly* -- the actual meter
   bills the replicated exchange (and, for broadcasts, the relay fan-out
   leg), not the abstract one.
2. **detect**: a word whose best-supported value has fewer than ``T + 1``
   agreeing valid copies is an inconsistency (flip masks are pairwise
   distinct across relays and drops are known erasures, so no wrong value
   can ever reach the threshold -- see :mod:`repro.faults.encoding`).
3. **retry**: a detected inconsistency re-ships the exchange through a
   fresh relay assignment (the exchange counter salts
   ``disjoint_relays``), up to ``max_retries`` times, each retry billed.
4. **degrade**: past the budget the exchange raises
   :class:`~repro.errors.FaultToleranceExceeded`.  The invariant is *no
   silent wrong answers, ever*: a robust closure either equals the
   fault-free oracle edge-for-edge or raises.

Meter separation: ``clique.meter`` (a :class:`MirroredMeter`) bills what
the robust run actually spends; ``clique.abstract_meter`` bills what the
same workload costs on a fault-free clique -- phase-for-phase identical to
the oracle's meter, so the redundancy overhead factor is just the ratio of
the two round totals.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

import numpy as np

from repro.clique.accounting import CostMeter, PhaseCost
from repro.clique.messages import block_widths
from repro.clique.routing import (
    ArrayBatch,
    deliver_array,
    deliver_array_flat,
    flatten_array_batch,
)
from repro.clique.scheduling import disjoint_relays
from repro.errors import CliqueModelError, FaultToleranceExceeded
from repro.faults.encoding import majority_decode
from repro.faults.injection import FaultyClique, corrupt_pieces
from repro.faults.plan import FaultPlan


class MirroredMeter(CostMeter):
    """A cost meter that forwards every charge to a second, abstract meter.

    The robust clique points ``self.meter`` here: primitives that are not
    encoded (tuple broadcasts, transposes, ...) cost the same with or
    without faults, so they are billed on both meters.  The encoded
    collectives flip ``mirror`` off and split the billing by hand --
    replicated cost to the actual meter, fault-free cost to the abstract
    one -- which keeps the abstract meter phase-for-phase equal to a
    fault-free oracle run.
    """

    def __init__(self, abstract: CostMeter) -> None:
        super().__init__()
        self.abstract = abstract
        self.mirror = True

    def charge(self, cost: PhaseCost) -> None:
        super().charge(cost)
        if self.mirror:
            self.abstract.charge(cost)


class RobustClique(FaultyClique):
    """A congested clique whose array collectives tolerate ``T`` corrupt relays.

    Args:
        n: clique size.
        plan: the adversary (:class:`~repro.faults.plan.FaultPlan`), or None
            to run the encoded protocol fault-free (redundancy still billed).
        tolerance: ``T`` -- the per-exchange corruption budget the code must
            survive; the replication degree is ``c = 2T + 1`` (requires
            ``c <= n`` pairwise-distinct relays).
        max_retries: re-ship attempts after a detected inconsistency before
            degrading to :class:`~repro.errors.FaultToleranceExceeded`.

    Attributes:
        abstract_meter: the fault-free bill (equals the oracle's meter).
        meter: the actual bill, redundancy and retries included.
        retries: re-shipped exchanges so far.
        decode_failures: exchanges that degraded (raised) so far.
    """

    def __init__(
        self,
        n: int,
        *,
        plan: FaultPlan | None = None,
        tolerance: int = 1,
        max_retries: int = 2,
        **kwargs,
    ) -> None:
        super().__init__(n, plan=plan, **kwargs)
        if tolerance < 1:
            raise ValueError(
                f"robust collectives need tolerance >= 1, got {tolerance}"
            )
        copies = 2 * tolerance + 1
        if copies > n:
            raise CliqueModelError(
                f"replication degree 2*{tolerance}+1 = {copies} needs {copies} "
                f"pairwise-distinct relays but the clique has only {n} nodes"
            )
        if max_retries < 0:
            raise ValueError(f"retry budget must be non-negative, got {max_retries}")
        self.tolerance = tolerance
        self.copies = copies
        self.max_retries = max_retries
        self.abstract_meter = CostMeter()
        self.meter: MirroredMeter = MirroredMeter(self.abstract_meter)
        self.retries = 0
        self.decode_failures = 0

    # ------------------------------------------------------------------ #
    # Core encode -> corrupt -> decode -> retry loop
    # ------------------------------------------------------------------ #

    def _decode_replicated(
        self,
        pieces: np.ndarray,
        rep_blocks: np.ndarray,
        skip_rep: np.ndarray | None,
        abstract_cost: PhaseCost,
        rep_costs: Callable[[int], list[PhaseCost]],
        phase: str,
    ) -> np.ndarray:
        """Run one encoded exchange end to end; return the decoded pieces.

        ``pieces`` is the ``(P, ...)`` fault-free truth, ``rep_blocks`` its
        ``(P * c, ...)`` replication (copy ``j`` of piece ``i`` at row
        ``i * c + j``).  ``rep_costs(exchange_id)`` yields the actual-meter
        charges of one shipping attempt (relay assignment, and hence
        broadcast balance, depends on the exchange id).
        """
        c = self.copies
        p = pieces.shape[0]
        self.meter.mirror = False
        try:
            self.abstract_meter.charge(abstract_cost)
            for attempt in range(self.max_retries + 1):
                exchange_id = self._next_exchange()
                for cost in rep_costs(exchange_id):
                    self.meter.charge(cost)
                if self.plan is None or self.plan.t == 0:
                    return pieces
                tampered, hit, dropped = corrupt_pieces(
                    self.plan,
                    exchange_id,
                    self.n,
                    rep_blocks,
                    copies=c,
                    skip=skip_rep,
                )
                self.faults_injected += int(hit.sum())
                decoded, ok = majority_decode(
                    tampered.reshape((p, c) + pieces.shape[1:]),
                    ~dropped.reshape(p, c),
                    self.tolerance + 1,
                )
                if bool(ok.all()):
                    return decoded
                if attempt < self.max_retries:
                    self.retries += 1
            self.decode_failures += 1
            raise FaultToleranceExceeded(
                f"phase {phase!r}: {int((~ok).sum())} of {p} pieces failed to "
                f"reach the support threshold {self.tolerance + 1} after "
                f"{self.max_retries + 1} attempts (tolerance {self.tolerance}, "
                f"fault kind {self.plan.kind.value!r}, budget t={self.plan.t})"
            )
        finally:
            self.meter.mirror = True

    def _robust_routed(
        self, batch: ArrayBatch, abstract_cost: PhaseCost, phase: str
    ) -> np.ndarray:
        """Encoded variant of one routed/direct batch; returns decoded blocks.

        The replicated exchange is charged as a *routed* exchange even when
        the abstract one is direct: relaying through ``c`` distinct
        intermediates is what buys the disjointness the decode needs, so a
        replicated direct send is physically a Lenzen-routed exchange.
        """
        c = self.copies
        rep_batch = ArrayBatch(
            n=batch.n,
            src=np.repeat(batch.src, c),
            dst=np.repeat(batch.dst, c),
            widths=np.repeat(batch.widths, c),
            blocks=np.repeat(batch.blocks, c, axis=0),
            tags=None,
        )
        rep_cost = self._routed_batch_cost(rep_batch, f"{phase}/encoded", None)
        skip_rep = np.repeat(batch.dst == batch.src, c)
        return self._decode_replicated(
            batch.blocks,
            rep_batch.blocks,
            skip_rep,
            abstract_cost,
            lambda _exchange_id: [rep_cost],
            phase,
        )

    def _robust_broadcast(
        self,
        pieces: np.ndarray,
        owners: np.ndarray,
        piece_widths: np.ndarray,
        abstract_cost: PhaseCost,
        phase: str,
    ) -> np.ndarray:
        """Encoded variant of one row broadcast; returns the decoded rows.

        A plain broadcast has no relays, so a corrupt *sender-side* hit
        would defeat naive repetition (all copies share the fault).  The
        encoded broadcast therefore relays: each piece is routed to its
        ``c`` distinct relay nodes (fan-out leg, billed as a routed
        exchange), and each relay broadcasts the copies it holds (billed by
        the per-relay balance of the assignment).
        """
        c = self.copies
        n = self.n
        p = pieces.shape[0]
        rep_widths = np.repeat(piece_widths, c)
        rep_owners = np.repeat(owners, c)

        def rep_costs(exchange_id: int) -> list[PhaseCost]:
            relays = disjoint_relays(p, c, n, salt=exchange_id).reshape(-1)
            fan_batch = ArrayBatch(
                n=n,
                src=rep_owners,
                dst=relays,
                widths=rep_widths,
                blocks=np.zeros((relays.shape[0], 0), dtype=np.int64),
                tags=None,
            )
            fan_cost = self._routed_batch_cost(fan_batch, f"{phase}/fanout", None)
            per_relay = np.zeros(n, dtype=np.int64)
            np.add.at(per_relay, relays, rep_widths)
            bcast_cost = self._broadcast_cost(
                [int(w) for w in per_relay], f"{phase}/encoded"
            )
            return [fan_cost, bcast_cost]

        return self._decode_replicated(
            pieces,
            np.repeat(pieces, c, axis=0),
            None,
            abstract_cost,
            rep_costs,
            phase,
        )

    # ------------------------------------------------------------------ #
    # Robust overrides of the array collectives
    # ------------------------------------------------------------------ #

    def route_array(
        self,
        dests,
        blocks,
        *,
        widths=None,
        tags=None,
        phase: str = "route",
        expect_max_load: int | None = None,
        flat: bool = False,
    ):
        batch = self._flatten_checked(dests, blocks, widths, tags)
        abstract_cost = self._routed_batch_cost(batch, phase, expect_max_load)
        decoded = self._robust_routed(batch, abstract_cost, phase)
        out_batch = replace(batch, blocks=decoded)
        return deliver_array_flat(out_batch) if flat else deliver_array(out_batch)

    def route_array_take(
        self,
        dests,
        blocks,
        *,
        take: np.ndarray,
        widths=None,
        out: np.ndarray | None = None,
        owners: np.ndarray | None = None,
        phase: str = "route",
        expect_max_load: int | None = None,
    ) -> np.ndarray:
        batch = self._flatten_checked(dests, blocks, widths, None)
        # Same discipline as the base model: reject a bad gather *before*
        # anything is charged, on either meter.
        take = np.asarray(take, dtype=np.intp)
        if take.size and (
            int(take.min()) < 0 or int(take.max()) >= batch.blocks.shape[0]
        ):
            raise CliqueModelError("route_array_take: take index out of range")
        if owners is not None and not np.array_equal(batch.dst[take], owners):
            raise CliqueModelError(
                "route_array_take: gather reads pieces addressed to another "
                "node (take/owners disagree with the batch destinations)"
            )
        abstract_cost = self._routed_batch_cost(batch, phase, expect_max_load)
        decoded = self._robust_routed(batch, abstract_cost, phase)
        return np.take(decoded, take, axis=0, out=out)

    def send_array(
        self,
        dests,
        blocks,
        *,
        widths=None,
        tags=None,
        phase: str = "send",
        expect_max_pair: int | None = None,
    ):
        try:
            if widths is None:
                widths = [
                    block_widths(np.asarray(b, dtype=np.int64), self.word_bits)
                    for b in blocks
                ]
            batch = flatten_array_batch(dests, blocks, widths, tags, self.n)
        except ValueError as exc:
            raise CliqueModelError(str(exc)) from exc
        abstract_cost = self._direct_batch_cost(batch, phase, expect_max_pair)
        decoded = self._robust_routed(batch, abstract_cost, phase)
        return deliver_array(replace(batch, blocks=decoded))

    def _deliver_broadcast_rows(
        self, rows: np.ndarray, width_list: list[int], phase: str
    ) -> np.ndarray:
        abstract_cost = self._broadcast_cost(width_list, phase)
        return self._robust_broadcast(
            rows,
            np.arange(self.n, dtype=np.int64),
            np.asarray(width_list, dtype=np.int64),
            abstract_cost,
            phase,
        )

    def _broadcast_held(
        self,
        held: list[np.ndarray],
        bcast_widths: list[int],
        phase: str,
    ) -> np.ndarray:
        abstract_cost = self._broadcast_cost(bcast_widths, phase)
        counts = [int(h.shape[0]) for h in held]
        owners = np.repeat(np.arange(self.n, dtype=np.int64), counts)
        # allgather_rows charges a uniform per-record width per holder, so
        # the per-piece width is the holder total split evenly.
        per_piece = [
            np.full(cnt, bcast_widths[v] // cnt, dtype=np.int64)
            for v, cnt in enumerate(counts)
            if cnt
        ]
        piece_widths = (
            np.concatenate(per_piece) if per_piece else np.zeros(0, dtype=np.int64)
        )
        return self._robust_broadcast(
            np.concatenate(held, axis=0), owners, piece_widths, abstract_cost, phase
        )

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #

    @property
    def overhead_factor(self) -> float:
        """Actual rounds divided by the abstract (fault-free) rounds."""
        base = self.abstract_meter.rounds
        return float(self.meter.rounds) / base if base else 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RobustClique(n={self.n}, tolerance={self.tolerance}, "
            f"copies={self.copies}, rounds={self.meter.rounds}, "
            f"abstract_rounds={self.abstract_meter.rounds})"
        )


__all__ = ["MirroredMeter", "RobustClique"]
