"""Unit tests for word-size arithmetic and outbox validation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.clique.messages import (
    default_word_bits,
    int_bits,
    validate_outboxes,
    words_for_array,
    words_for_value,
)


class TestWordBits:
    def test_minimum_is_16(self):
        assert default_word_bits(2) == 16
        assert default_word_bits(100) == 16

    def test_grows_with_log_n(self):
        assert default_word_bits(2**10) == 20
        assert default_word_bits(2**20) == 40

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            default_word_bits(0)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_word_always_fits_two_node_ids(self, n):
        import math

        bits = default_word_bits(n)
        id_bits = max(1, math.ceil(math.log2(max(2, n))))
        assert bits >= 2 * id_bits


class TestIntBits:
    def test_small_values(self):
        assert int_bits(0) == 2  # sign + 1 magnitude bit
        assert int_bits(1) == 2
        assert int_bits(255) == 9

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            int_bits(-1)

    @given(st.integers(min_value=0, max_value=2**60))
    def test_monotone(self, x):
        assert int_bits(x + 1) >= int_bits(x)


class TestWordsForValue:
    def test_unit_width_small_values(self):
        assert words_for_value(100, 16) == 1

    def test_wide_values_need_more_words(self):
        assert words_for_value(2**40, 16) == 3  # 42 bits / 16

    @given(
        st.integers(min_value=0, max_value=2**62 - 1),
        st.integers(min_value=8, max_value=64),
    )
    def test_width_covers_encoding(self, value, word_bits):
        words = words_for_value(value, word_bits)
        assert words * word_bits >= int_bits(value)


class TestWordsForArray:
    def test_empty_array_is_free(self):
        assert words_for_array(np.array([], dtype=np.int64), 16) == 0

    def test_unit_entries(self):
        arr = np.ones(10, dtype=np.int64)
        assert words_for_array(arr, 16) == 10

    def test_wide_entries_charged_per_entry(self):
        arr = np.full(4, 2**40, dtype=np.int64)
        assert words_for_array(arr, 16) == 12

    def test_bool_arrays(self):
        arr = np.ones(6, dtype=bool)
        assert words_for_array(arr, 16) == 6

    def test_width_uses_max_abs(self):
        arr = np.array([1, -(2**40)], dtype=np.int64)
        assert words_for_array(arr, 16) == 2 * 3


class TestValidateOutboxes:
    def test_valid(self):
        validate_outboxes([[(1, "x", 1)], []], n=2)

    def test_wrong_length(self):
        with pytest.raises(ValueError):
            validate_outboxes([[]], n=2)

    def test_destination_out_of_range(self):
        with pytest.raises(ValueError):
            validate_outboxes([[(5, "x", 1)], []], n=2)

    def test_self_message_rejected_by_default(self):
        with pytest.raises(ValueError):
            validate_outboxes([[(0, "x", 1)], []], n=2)

    def test_self_message_allowed_when_opted_in(self):
        validate_outboxes([[(0, "x", 1)], []], n=2, allow_self=True)

    def test_nonpositive_width(self):
        with pytest.raises(ValueError):
            validate_outboxes([[(1, "x", 0)], []], n=2)

    def test_malformed_item(self):
        with pytest.raises(ValueError):
            validate_outboxes([[(1, "x")], []], n=2)  # type: ignore[list-item]
