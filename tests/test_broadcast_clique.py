"""Tests for the broadcast congested clique (paper §4, Corollary 24)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clique.broadcast_clique import (
    BroadcastCongestedClique,
    broadcast_clique_matmul,
    broadcast_matmul_round_floor,
)
from repro.errors import CliqueModelError


class TestModel:
    def test_needs_two_nodes(self):
        with pytest.raises(CliqueModelError):
            BroadcastCongestedClique(1)

    def test_broadcast_rounds_follow_max_width(self):
        clique = BroadcastCongestedClique(4)
        clique.broadcast(["a", "b", "c", "d"], words=[1, 3, 1, 1])
        assert clique.rounds == 3

    def test_all_nodes_receive_everything(self):
        clique = BroadcastCongestedClique(5)
        received = clique.broadcast(list(range(5)))
        for u in range(5):
            assert received[u] == [0, 1, 2, 3, 4]

    def test_wrong_payload_count(self):
        clique = BroadcastCongestedClique(3)
        with pytest.raises(CliqueModelError):
            clique.broadcast([1, 2])

    def test_no_unicast_primitives(self):
        clique = BroadcastCongestedClique(4)
        assert not hasattr(clique, "send")
        assert not hasattr(clique, "route")


class TestBroadcastMatmul:
    def test_correct(self, rng):
        n = 12
        s = rng.integers(-9, 10, (n, n), dtype=np.int64)
        t = rng.integers(-9, 10, (n, n), dtype=np.int64)
        clique = BroadcastCongestedClique(n)
        assert np.array_equal(broadcast_clique_matmul(clique, s, t), s @ t)

    def test_rounds_are_linear_in_n(self, rng):
        rounds = []
        for n in (8, 16, 32):
            s = rng.integers(0, 2, (n, n), dtype=np.int64)
            clique = BroadcastCongestedClique(n)
            broadcast_clique_matmul(clique, s, s)
            rounds.append(clique.rounds)
        assert rounds == [16, 32, 64]  # 2 rows (S and T) of n words each

    def test_corollary24_floor_respected(self, rng):
        # The separation: broadcast matmul pays >= Omega(n) while the
        # unicast engines pay O(n^{1/3}) on the same input.
        from repro.clique import CongestedClique
        from repro.matmul.semiring3d import semiring_matmul

        n = 64
        s = rng.integers(0, 2, (n, n), dtype=np.int64)
        bc = BroadcastCongestedClique(n)
        broadcast_clique_matmul(bc, s, s)
        assert bc.rounds >= broadcast_matmul_round_floor(n)
        unicast = CongestedClique(n)
        semiring_matmul(unicast, s, s)
        assert unicast.rounds < bc.rounds

    def test_shape_validation(self, rng):
        clique = BroadcastCongestedClique(8)
        bad = rng.integers(0, 2, (4, 4), dtype=np.int64)
        with pytest.raises(ValueError):
            broadcast_clique_matmul(clique, bad, bad)
