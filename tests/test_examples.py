"""Smoke tests: every example script runs end to end at a small scale."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

# The engine-check markers certify, in-process, that the array path's round
# counts match the retained tuple path's (the examples assert the equality
# and print the line; the test asserts the line appeared).
_ENGINE_PARITY = ["engine check", "== tuple path rounds"]

CASES = [
    pytest.param("quickstart.py", ["27"], [], id="quickstart.py"),
    pytest.param(
        "social_network_triangles.py",
        ["36"],
        _ENGINE_PARITY,
        id="social_network_triangles.py",
    ),
    pytest.param(
        "road_network_apsp.py", ["3", "4"], [], id="road_network_apsp.py"
    ),
    pytest.param(
        "girth_and_cycles.py",
        ["25"],
        _ENGINE_PARITY,
        id="girth_and_cycles.py",
        marks=pytest.mark.slow,
    ),
    pytest.param("scaling_study.py", ["--small"], [], id="scaling_study.py"),
    pytest.param("bottleneck_routing.py", ["16"], [], id="bottleneck_routing.py"),
    pytest.param(
        "spanning_workloads.py",
        ["22"],
        ["edge-for-edge", "O(1)-round collectives"],
        id="spanning_workloads.py",
    ),
    pytest.param(
        "serving_workloads.py",
        ["20"],
        ["memory-mapped batch serving", "edge-for-edge", "generation 1"],
        id="serving_workloads.py",
    ),
]


@pytest.mark.parametrize("script,args,expected_markers", CASES)
def test_example_runs(script, args, expected_markers):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples should print their findings"
    for marker in expected_markers:
        assert marker in result.stdout


def test_quickstart_reports_round_counts():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py"), "27"],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert "rounds" in result.stdout
    assert "TOTAL" in result.stdout  # the per-phase meter report
