#!/usr/bin/env python
"""Quickstart: distributed matrix multiplication on a congested clique.

The minimal tour of the public API: build a metered clique, run the paper's
two matmul engines plus the naive baseline on the same inputs, and read the
communication bill off the meter.

Run: ``python examples/quickstart.py [n]`` (``n`` a perfect square & cube,
default 64).
"""

from __future__ import annotations

import sys

import numpy as np

from repro import (
    bilinear_matmul,
    broadcast_matmul,
    make_clique,
    semiring_matmul,
)
from repro.matmul.exponent import predicted_semiring3d_rounds
from repro.runtime import pad_matrix


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    rng = np.random.default_rng(0)
    s = rng.integers(-9, 10, (n, n), dtype=np.int64)
    t = rng.integers(-9, 10, (n, n), dtype=np.int64)
    expected = s @ t

    print(f"Multiplying two {n}x{n} integer matrices on a congested clique")
    print("(each engine pads to the smallest clique size its layout needs)\n")

    # Theorem 1, semiring part: the 3D algorithm, O(n^{1/3}) rounds.
    clique = make_clique(n, "semiring")
    sp, tp = pad_matrix(s, clique.n), pad_matrix(t, clique.n)
    p = semiring_matmul(clique, sp, tp)
    assert np.array_equal(p[:n, :n], expected)
    print(f"semiring 3D algorithm   : {clique.rounds:5d} rounds on "
          f"{clique.n:3d} nodes (predicted "
          f"{predicted_semiring3d_rounds(clique.n)})")

    # Theorem 1, ring part: Strassen through Lemma 10, O(n^{0.288}) rounds.
    clique = make_clique(n, "bilinear")
    sp, tp = pad_matrix(s, clique.n), pad_matrix(t, clique.n)
    p = bilinear_matmul(clique, sp, tp)
    assert np.array_equal(p[:n, :n], expected)
    print(f"bilinear (Strassen)     : {clique.rounds:5d} rounds on "
          f"{clique.n:3d} nodes")

    # The obvious baseline: replicate T by broadcast, O(n) rounds.
    clique = make_clique(n, "naive")
    p = broadcast_matmul(clique, s, t)
    assert np.array_equal(p, expected)
    print(f"naive broadcast baseline: {clique.rounds:5d} rounds on "
          f"{clique.n:3d} nodes")

    print("\nPer-phase cost of one semiring run:")
    clique = make_clique(n, "semiring")
    semiring_matmul(clique, pad_matrix(s, clique.n), pad_matrix(t, clique.n))
    print(clique.meter.report())
    return 0


if __name__ == "__main__":
    sys.exit(main())
