"""Per-phase load-balance reports (the Figures 1-2 claims, as an API).

The partition figures in the paper assert that every node carries an equal
share of each communication step.  :func:`load_report` turns a run's cost
meter into the corresponding quantitative statement: per phase, the maximum
per-node traffic vs the mean, and the balance ratio (1.0 = perfectly flat).
Used by the figure benchmarks and handy for diagnosing any new algorithm
written against the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clique.accounting import CostMeter


@dataclass(frozen=True)
class PhaseLoad:
    """Load-balance summary of one communication phase."""

    phase: str
    rounds: int
    total_words: int
    max_send: int
    max_recv: int
    mean_words: float

    @property
    def balance(self) -> float:
        """max traffic / mean traffic; 1.0 means perfectly balanced."""
        if self.mean_words == 0:
            return 1.0
        return max(self.max_send, self.max_recv) / self.mean_words


def load_report(meter: CostMeter, n: int) -> list[PhaseLoad]:
    """Summarise every phase of a run on an ``n``-node clique."""
    out = []
    for p in meter.phases:
        out.append(
            PhaseLoad(
                phase=p.phase,
                rounds=p.rounds,
                total_words=p.words,
                max_send=p.max_send_words,
                max_recv=p.max_recv_words,
                mean_words=p.words / n if n else 0.0,
            )
        )
    return out


def format_load_report(loads: list[PhaseLoad]) -> str:
    """Human-readable balance table."""
    lines = [
        f"{'phase':40s} {'rounds':>7s} {'words':>10s} {'max':>8s} "
        f"{'mean':>10s} {'balance':>8s}"
    ]
    for load in loads:
        lines.append(
            f"{load.phase:40s} {load.rounds:7d} {load.total_words:10d} "
            f"{max(load.max_send, load.max_recv):8d} {load.mean_words:10.1f} "
            f"{load.balance:8.3f}"
        )
    return "\n".join(lines)


__all__ = ["PhaseLoad", "load_report", "format_load_report"]
