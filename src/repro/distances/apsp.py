"""Exact weighted APSP via iterated distance-product squaring (Corollary 6).

``W^n`` over the min-plus semiring holds all shortest-path distances; it is
reached with ``ceil(log2 n)`` squarings, each an ``O(n^{1/3})``-round
semiring product (Theorem 1), for ``O(n^{1/3} log n)`` rounds in total (the
``dlog M / log ne`` width factor is metered automatically from the entry
magnitudes).  The loop is the shared session closure
(:meth:`repro.engine.EngineSession.closure`): one bound min-plus session
carries every squaring on cached plans.

Routing tables (§3.3 "constructing routing tables"): the semiring engine
returns witness matrices for free (local arg-min), and the table is updated
by ``R[u, v] <- R[u, Q[u, v]]`` whenever the squaring improves a distance --
a purely node-local update, since row ``u`` of ``R``, ``Q`` and the new
distances all live at node ``u``.

Negative integer weights are allowed (Table 1: weights in
``{0, +-1, ..., +-M}``); a negative-weight cycle is reported via
:class:`~repro.errors.NegativeCycleError` when a diagonal entry drops below
zero.
"""

from __future__ import annotations

import numpy as np

from repro.algebra.semirings import MIN_PLUS
from repro.clique.model import CongestedClique, ScheduleMode
from repro.constants import INF
from repro.engine import EngineSession, default_steps
from repro.errors import NegativeCycleError
from repro.graphs.graphs import Graph
from repro.runtime import RunResult, make_clique, pad_matrix


def apsp_exact(
    graph: Graph,
    *,
    with_routing_tables: bool = True,
    method: str = "semiring",
    clique: CongestedClique | None = None,
    mode: ScheduleMode = ScheduleMode.FAST,
) -> RunResult:
    """Corollary 6: exact APSP (+ routing tables) for integer weights.

    Returns distances (``value``), with ``extras["next_hop"]`` holding the
    routing table when requested: ``next_hop[u, v]`` is the first hop of a
    shortest ``u -> v`` path (``-1`` if unreachable or ``u == v``).

    ``method`` selects a selection-semiring engine (``"semiring"`` --
    Theorem 1's ``O(n^{1/3})`` engine -- or the ``"naive"`` baseline); the
    bilinear engine cannot run min-plus directly (see Lemma 18/20 for the
    ring embeddings).
    """
    n = graph.n
    clique = clique or make_clique(n, method, mode=mode)
    session = EngineSession(clique, method, MIN_PLUS)
    dist = pad_matrix(graph.weight_matrix(), clique.n, fill=INF)
    next_hop = None
    if with_routing_tables:
        next_hop = np.full((clique.n, clique.n), -1, dtype=np.int64)
        edge_rows, edge_cols = np.nonzero(dist < INF)
        next_hop[edge_rows, edge_cols] = edge_cols
        np.fill_diagonal(next_hop, np.arange(clique.n))

    def check_diagonal(step: int, accum: np.ndarray) -> None:
        if np.any(np.diag(accum) < 0):
            raise NegativeCycleError(
                "negative-weight cycle detected during squaring"
            )

    iterations = default_steps(n)
    dist = session.closure(
        dist,
        steps=iterations,
        with_witnesses=with_routing_tables,
        next_hop=next_hop,
        on_step=check_diagonal,
        phase="apsp",
        step_label="square",
    )

    value = dist[:n, :n]
    extras: dict[str, object] = {"squarings": iterations}
    if with_routing_tables:
        hop_view = next_hop[:n, :n].copy()
        np.fill_diagonal(hop_view, -1)
        extras["next_hop"] = hop_view
    return RunResult(
        value=value,
        rounds=clique.rounds,
        clique_size=clique.n,
        meter=clique.meter,
        extras=extras,
    )


__all__ = ["apsp_exact"]
