"""Spanning workloads on the engine-session API (spanners + MST).

Two graph-sparsification workloads that consume the repo's §2.2 machinery
as first-class session clients rather than bespoke loops:

* :mod:`repro.spanning.spanner` -- Baswana--Sen ``(2k-1)``-spanners in the
  Parter--Yogev congested-clique formulation (arXiv:1805.05404): the
  cluster-growing rounds are min-plus witness products on one bound
  :class:`~repro.engine.EngineSession`, plus dense one-round collective
  exchanges.
* :mod:`repro.spanning.mst` -- the Jurdzinski--Nowicki O(1)-round MST
  skeleton (arXiv:1707.08484): Boruvka phases whose component contraction
  runs through the Boolean components session and min-plus contraction
  products, KKT edge sampling, and F-light filtering feeding a constant-
  round allgather.

Both ship centralised reference oracles next to the distributed
implementations, mirroring the repo's ``*_reference`` convention.
"""

from repro.spanning.mst import (
    minimum_spanning_forest,
    mst_reference,
    mst_weight,
)
from repro.spanning.spanner import (
    baswana_sen_reference,
    build_spanner,
    spanner_stretch,
)

__all__ = [
    "build_spanner",
    "baswana_sen_reference",
    "spanner_stretch",
    "minimum_spanning_forest",
    "mst_reference",
    "mst_weight",
]
