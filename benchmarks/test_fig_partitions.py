"""E12-E14 -- the paper's figures, reproduced as machine-checkable reports.

Figures 1-3 are partition/tiling schematics; what they *claim* is load
balance and disjointness, which is measurable:

* Figure 1 (semiring partition): every node sends and receives the same
  2 n^{4/3} words in step 1 -- the per-node load spread is tiny.
* Figure 2 (two-level bilinear partition): same balance for steps 1/3/5/7.
* Figure 3 (4-cycle tiling): Lemma 12's tiles are disjoint, sized
  >= deg/8, and fit in the k x k square across adversarial degree profiles.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clique import CongestedClique
from repro.graphs import gnp_random_graph, preferential_attachment_graph, windmill_graph
from repro.matmul.bilinear_clique import bilinear_matmul, default_algorithm
from repro.matmul.semiring3d import semiring_matmul
from repro.subgraphs import build_tiling, tile_side

from .conftest import run_once


def test_fig1_semiring_load_balance(benchmark):
    n = 64
    rng = np.random.default_rng(0)
    s = rng.integers(0, 2, (n, n), dtype=np.int64)
    t = rng.integers(0, 2, (n, n), dtype=np.int64)

    def run():
        clique = CongestedClique(n)
        semiring_matmul(clique, s, t)
        return clique.meter.phases

    phases = run_once(benchmark, run)
    step1 = next(p for p in phases if "step1" in p.phase)
    benchmark.extra_info["step1_max_send"] = step1.max_send_words
    benchmark.extra_info["step1_total_words"] = step1.words
    # Near-perfect balance: self-addressed pieces are free local moves, so
    # node loads differ only by the O(n^{2/3}) words a node keeps for itself.
    average = step1.words / n
    assert step1.max_send_words <= average * 1.05
    assert step1.max_send_words <= 2 * round(n ** (4 / 3))


def test_fig2_bilinear_load_balance(benchmark):
    n = 49
    rng = np.random.default_rng(1)
    s = rng.integers(0, 2, (n, n), dtype=np.int64)
    t = rng.integers(0, 2, (n, n), dtype=np.int64)

    def run():
        clique = CongestedClique(n)
        bilinear_matmul(clique, s, t, default_algorithm(n))
        return clique.meter.phases

    phases = run_once(benchmark, run)
    for p in phases:
        benchmark.extra_info[p.phase.replace("/", "_")] = (
            p.max_send_words,
            p.max_recv_words,
        )
    # Step 1 sends exactly 2 M words from every node.
    step1 = next(p for p in phases if "step1" in p.phase)
    assert step1.max_send_words * n >= step1.words  # max >= average
    assert step1.max_send_words <= step1.words // n + 2 * 64  # near-perfect


@pytest.mark.parametrize(
    "graph_name",
    ["gnp", "hub", "windmill"],
)
def test_fig3_tiling_validity(benchmark, graph_name):
    n = 128
    if graph_name == "gnp":
        g = gnp_random_graph(n, 0.1, seed=2)
    elif graph_name == "hub":
        g = preferential_attachment_graph(n, attach=3, seed=3)
    else:
        g = windmill_graph(n + 1)

    degrees = g.degrees()[: n]

    def run():
        return build_tiling(degrees, n)

    tiles = run_once(benchmark, run)
    benchmark.extra_info["tiles"] = len(tiles)
    benchmark.extra_info["max_side"] = max((t.side for t in tiles), default=0)
    k = 1 << (n.bit_length() - 1)
    occupied = np.zeros((k, k), dtype=bool)
    for tile in tiles:
        block = occupied[
            tile.row_start : tile.row_start + tile.side,
            tile.col_start : tile.col_start + tile.side,
        ]
        assert block.shape == (tile.side, tile.side)  # inside the square
        assert not block.any()  # disjoint
        block[:, :] = True
        assert tile.side >= max(1, int(degrees[tile.y]) / 8)  # Lemma 12
    benchmark.extra_info["occupancy"] = float(occupied.mean())
