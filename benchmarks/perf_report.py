#!/usr/bin/env python
"""Performance report for the semiring kernel + messaging fast path.

Usage::

    PYTHONPATH=src python benchmarks/perf_report.py              # full report
    PYTHONPATH=src python benchmarks/perf_report.py --quick      # small sizes
    PYTHONPATH=src python benchmarks/perf_report.py --out X.json

Times four layers and writes ``BENCH_matmul.json``:

* **Kernels** -- the blocked min-plus / max-min block-product kernels
  (:mod:`repro.algebra.semirings`) against the seed's cube-materialising
  kernel (retained as ``cube_matmul_with_witness``), at ``n ~ 512``.  The
  seed implemented *both* ``matmul`` and ``matmul_with_witness`` via the
  cube kernel, so it is the baseline for both entry points.
* **Bilinear engine** -- the array-native §2.2 engine against the retained
  per-payload tuple formulation (``bilinear_matmul_tuple``), at ``n = 256``
  in every mode so ``make bench-check`` can gate it.
* **Boolean product** -- the blocked (``float32`` GEMM) Boolean kernel
  against the retained cube-materialising ``cube_matmul`` baseline, at
  ``n = 512``.
* **Kernel gate** -- the kernel section re-run at a fixed ``n = 128`` in
  every mode, so ``make bench-check`` always has comparable kernel rows.
* **Kernel generation 2** -- the PR 4 wave, at fixed sizes in every mode
  (gateable): the batch-axis witness kernel vs the retained per-block loop,
  the ``uint64`` bit-packed Boolean kernel vs the ``float32`` GEMM path,
  the packed max-min witness kernel vs the generic column walk, and the
  arena-backed exchange pipeline vs per-call allocation.
* **Kernel generation 3** -- the PR 7 wave, at fixed sizes in every mode
  (gateable): threaded tile backends vs serial tiles on the packed
  witness and pre-packed Boolean kernels (``cpus``/``threads`` recorded;
  ``bench_check`` skips the comparison unless both runs saw multiple
  cores), and the persistent packed Boolean closure vs the per-product
  packing path at ``n = 512`` with its deterministic round bill gated
  for exact equality.
* **Spanning** -- the PR 5 spanner/MST workloads through engine sessions,
  at one fixed size in every mode; their deterministic round bills are
  gated for exact equality by ``bench_check``.
* **Faults** -- the PR 6 robustness layer: a min-plus closure on the
  replication-coded robust collectives under seeded flip/drop/crash
  adversaries, verified equal to the fault-free oracle, with the
  deterministic encoded vs abstract round bills (exact-equality gated)
  and the honest redundancy ``overhead_factor``.
* **Serve** -- the PR 8 serving layer: building vs memory-mapping the
  ``n = 512`` closure artifact (build rounds exact-equality gated), 10k
  batched distance queries as one fancy-index gather vs the per-query
  Python loop (the ``>= 50x`` target asserted before the row is written),
  the dirty-strip delta update vs a forced full rebuild with identical
  closures and the deterministic round-bill ratio as the gated speedup,
  and informational qps/p50/p99 through the asyncio batching server.
* **Sessions** -- the end-to-end engine-session pipeline: exact APSP and
  directed girth through one bound session on the serial vs the sharded
  executor (identical rounds asserted), the packed min-plus witness kernel
  vs the retained column-walk baseline (fixed size in every mode,
  gateable), and the session plan cache with plan construction isolated
  from product time.
* **End to end** -- the 3D semiring engine and the APSP driver on the
  array-native messaging path, with their metered round counts, seeding the
  perf trajectory for future PRs.

Timings are best-of-``reps`` wall clock; simulated round counts are
deterministic.  Shard speedups depend on available cores (the ``cpus``
field records them) -- on a single-core box the sharded rows measure pure
multiprocessing overhead, honestly reported.

``--gate-only`` builds just the fixed-size gateable sections (what
``make bench-quick`` / the CI fast lane run); the heavy end-to-end and
session rows need the full report.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

# Allow `python benchmarks/perf_report.py` without an explicit PYTHONPATH.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.algebra.semirings import BOOLEAN, MAX_MIN, MIN_PLUS, get_block_tile
from repro.clique.arena import ExchangeArena
from repro.clique.executor import SERIAL_EXECUTOR, ShardedExecutor
from repro.clique.model import CongestedClique
from repro.constants import INF
from repro.distances.apsp import apsp_exact
from repro.distances.girth import girth_directed
from repro.graphs.generators import random_weighted_graph
from repro.graphs.graphs import Graph
from repro.matmul.bilinear_clique import bilinear_matmul, bilinear_matmul_tuple
from repro.matmul.naive import broadcast_matmul
from repro.matmul.semiring3d import cube_plan, semiring_matmul


def _best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _best_of_pair(fn_a, fn_b, reps: int) -> tuple[float, float]:
    """Best-of timings for a baseline/fast pair, *interleaved*.

    Timing the two sides in separate best-of blocks lets machine drift
    between the blocks (a noisy neighbour, a frequency step) skew the
    ratio the gate checks; alternating A/B on every rep makes both sides
    see the same conditions.  Same total work as two ``_best_of`` calls.
    """
    best_a = best_b = float("inf")
    for _ in range(reps):
        best_a = min(best_a, _best_of(fn_a, 1))
        best_b = min(best_b, _best_of(fn_b, 1))
    return best_a, best_b


def _distance_matrix(rng: np.random.Generator, n: int) -> np.ndarray:
    mat = rng.integers(0, 1000, (n, n), dtype=np.int64)
    mat[rng.random((n, n)) < 0.1] = INF
    return mat


def _bottleneck_matrix(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.integers(-1000, 1000, (n, n), dtype=np.int64)


def kernel_section(n: int, reps: int) -> dict:
    """Blocked kernels vs the seed cube kernel on one n x n block product."""
    rng = np.random.default_rng(0)
    section: dict[str, dict] = {}
    for semiring, make in (
        (MIN_PLUS, _distance_matrix),
        (MAX_MIN, _bottleneck_matrix),
    ):
        x, y = make(rng, n), make(rng, n)
        # Correctness cross-check before timing anything.
        p_cube, w_cube = semiring.cube_matmul_with_witness(x, y)
        p_blk, w_blk = semiring.matmul_with_witness(x, y)
        assert np.array_equal(p_cube, p_blk), semiring.name
        assert np.array_equal(w_cube, w_blk), semiring.name
        assert np.array_equal(semiring.matmul(x, y), p_cube), semiring.name

        # Interleaved best-of: all three variants see the same machine
        # conditions, so the gated ratios do not absorb drift.
        cube_s = plain_s = witness_s = float("inf")
        for _ in range(reps):
            cube_s = min(
                cube_s,
                _best_of(lambda: semiring.cube_matmul_with_witness(x, y), 1),
            )
            plain_s = min(plain_s, _best_of(lambda: semiring.matmul(x, y), 1))
            witness_s = min(
                witness_s,
                _best_of(lambda: semiring.matmul_with_witness(x, y), 1),
            )
        key = semiring.name.replace("-", "_")
        section[f"{key}_block_product"] = {
            "n": n,
            "tile": get_block_tile(),
            "seed_cube_seconds": round(cube_s, 4),
            "blocked_seconds": round(plain_s, 4),
            "speedup": round(cube_s / plain_s, 2),
        }
        section[f"{key}_block_product_with_witness"] = {
            "n": n,
            "seed_cube_seconds": round(cube_s, 4),
            "blocked_seconds": round(witness_s, 4),
            "speedup": round(cube_s / witness_s, 2),
        }
    return section


def bilinear_section(n: int, reps: int) -> dict:
    """Array-native §2.2 engine vs the retained tuple-outbox formulation."""
    rng = np.random.default_rng(3)
    s = rng.integers(-9, 10, (n, n), dtype=np.int64)
    t = rng.integers(-9, 10, (n, n), dtype=np.int64)

    # Correctness + round-equivalence cross-check before timing anything.
    array_clique = CongestedClique(n)
    tuple_clique = CongestedClique(n)
    p_array = bilinear_matmul(array_clique, s, t)
    p_tuple = bilinear_matmul_tuple(tuple_clique, s, t)
    assert np.array_equal(p_array, s @ t)
    assert np.array_equal(p_tuple, p_array)
    assert array_clique.rounds == tuple_clique.rounds

    tuple_s = _best_of(
        lambda: bilinear_matmul_tuple(CongestedClique(n), s, t), reps
    )
    array_s = _best_of(lambda: bilinear_matmul(CongestedClique(n), s, t), reps)
    return {
        "bilinear_engine": {
            "n": n,
            "rounds": array_clique.rounds,
            "tuple_seconds": round(tuple_s, 4),
            "array_seconds": round(array_s, 4),
            "speedup": round(tuple_s / array_s, 2),
        }
    }


def boolean_section(n: int, reps: int) -> dict:
    """Blocked (GEMM) Boolean kernel vs the cube-materialising baseline.

    Pinned to the ``float32`` GEMM entry point so the row keeps measuring
    what it claims now that :meth:`BooleanSemiring.matmul` dispatches large
    products to the bit-packed kernel (gated separately in ``kernel2``).
    """
    rng = np.random.default_rng(4)
    x = (rng.random((n, n)) < 0.05).astype(np.int64)
    y = (rng.random((n, n)) < 0.05).astype(np.int64)
    assert np.array_equal(BOOLEAN.gemm_matmul(x, y), BOOLEAN.cube_matmul(x, y))
    cube_s = _best_of(lambda: BOOLEAN.cube_matmul(x, y), reps)
    blocked_s = _best_of(lambda: BOOLEAN.gemm_matmul(x, y), reps)
    return {
        "boolean_block_product": {
            "n": n,
            "tile": BOOLEAN.BOOL_TILE,
            "cube_seconds": round(cube_s, 4),
            "blocked_seconds": round(blocked_s, 4),
            "speedup": round(cube_s / blocked_s, 2),
        }
    }


def kernel2_section(reps: int) -> dict:
    """PR 4 kernel generation 2, at fixed sizes in every mode (gateable).

    Every row cross-checks bit-identical values against its retained
    baseline before timing anything, mirroring the older sections.
    """
    section: dict[str, dict] = {}
    rng = np.random.default_rng(8)
    batch, block = 512, 64

    # ---- batch-axis witness kernel vs the retained per-block loop. ----- #
    bx = rng.integers(0, 1000, (batch, block, block), dtype=np.int64)
    by = rng.integers(0, 1000, (batch, block, block), dtype=np.int64)
    bx[rng.random(bx.shape) < 0.1] = INF
    by[rng.random(by.shape) < 0.1] = INF

    def per_block_loop():
        pairs = [
            MIN_PLUS.matmul_with_witness(bx[b], by[b]) for b in range(batch)
        ]
        return (
            np.stack([p for p, _ in pairs]),
            np.stack([w for _, w in pairs]),
        )

    loop_p, loop_w = per_block_loop()
    batch_p, batch_w = MIN_PLUS.matmul_batch_with_witness(bx, by)
    assert np.array_equal(loop_p, batch_p) and np.array_equal(loop_w, batch_w)
    loop_s, batch_s = _best_of_pair(
        per_block_loop, lambda: MIN_PLUS.matmul_batch_with_witness(bx, by), reps
    )
    section["batch_axis_witness"] = {
        "n": batch,
        "block": block,
        "per_block_seconds": round(loop_s, 4),
        "batched_seconds": round(batch_s, 4),
        "speedup": round(loop_s / batch_s, 2),
    }

    # ---- bit-packed Boolean kernel vs the float32 GEMM path. ----------- #
    # Millisecond-scale calls: interleave and take best-of-more so one
    # noisy scheduling quantum cannot skew the ratio.
    nb = 512
    x = (rng.random((nb, nb)) < 0.05).astype(np.int64)
    y = (rng.random((nb, nb)) < 0.05).astype(np.int64)
    assert np.array_equal(BOOLEAN.packed_matmul(x, y), BOOLEAN.gemm_matmul(x, y))
    gemm_s = packed_s = float("inf")
    for _ in range(max(reps, 15)):
        gemm_s = min(gemm_s, _best_of(lambda: BOOLEAN.gemm_matmul(x, y), 1))
        packed_s = min(packed_s, _best_of(lambda: BOOLEAN.packed_matmul(x, y), 1))
    section["packed_boolean"] = {
        "n": nb,
        "gemm_seconds": round(gemm_s, 4),
        "packed_seconds": round(packed_s, 4),
        "speedup": round(gemm_s / packed_s, 2),
    }

    # ---- work-based dispatch: a skinny-but-huge block. ----------------- #
    # The PR 5 heuristic switch: dispatch keys on m*k*n work (plus pack-
    # width floors), not min(m, k, n), so shapes like this one reach the
    # Four Russians kernel.  The row pins the crossover's payoff.
    ms, ks, ns = 128, 2048, 2048
    xs = (rng.random((ms, ks)) < 0.05).astype(np.int64)
    ys = (rng.random((ks, ns)) < 0.05).astype(np.int64)
    assert BOOLEAN._use_packed(ms, ks, ns)
    assert np.array_equal(
        BOOLEAN.packed_matmul(xs, ys), BOOLEAN.gemm_matmul(xs, ys)
    )
    gemm_s = packed_s = float("inf")
    for _ in range(max(reps, 10)):
        gemm_s = min(gemm_s, _best_of(lambda: BOOLEAN.gemm_matmul(xs, ys), 1))
        packed_s = min(
            packed_s, _best_of(lambda: BOOLEAN.packed_matmul(xs, ys), 1)
        )
    section["packed_boolean_skinny"] = {
        "n": ns,
        "m": ms,
        "k": ks,
        "gemm_seconds": round(gemm_s, 4),
        "packed_seconds": round(packed_s, 4),
        "speedup": round(gemm_s / packed_s, 2),
    }

    # ---- packed max-min witness kernel vs the generic column walk. ----- #
    mx = rng.integers(-1000, 1000, (batch, block, block), dtype=np.int64)
    my = rng.integers(-1000, 1000, (batch, block, block), dtype=np.int64)
    mx[rng.random(mx.shape) < 0.05] = -INF
    my[rng.random(my.shape) < 0.05] = -INF
    walk = MAX_MIN._generic_walk_batch_with_witness(mx, my)
    packed = MAX_MIN.matmul_batch_with_witness(mx, my)
    assert np.array_equal(walk[0], packed[0])
    assert np.array_equal(walk[1], packed[1])
    walk_s, packed_s = _best_of_pair(
        lambda: MAX_MIN._generic_walk_batch_with_witness(mx, my),
        lambda: MAX_MIN.matmul_batch_with_witness(mx, my),
        reps,
    )
    section["maxmin_witness"] = {
        "n": batch,
        "block": block,
        "walk_seconds": round(walk_s, 4),
        "packed_seconds": round(packed_s, 4),
        "speedup": round(walk_s / packed_s, 2),
    }

    # ---- arena-backed exchanges vs per-call allocation. ---------------- #
    # 4 witness squarings through one shared arena (what an engine session
    # does) vs a fresh arena per product (per-call buffers); the plan is
    # warm in both runs, so the delta is purely buffer reuse.  n=343 is the
    # sweet spot for this row: big enough that buffer reuse clears timer
    # noise (at 216 the ratio reads ~1.0), small enough that the gate-only
    # lane stays seconds (the n=512 pipeline is exercised by the full
    # report's sessions section).
    na = 343
    s = _distance_matrix(rng, na)
    arena = ExchangeArena()

    def products(shared_arena):
        clique = CongestedClique(na)
        for step in range(4):
            semiring_matmul(
                clique, s, s, MIN_PLUS, with_witnesses=True,
                phase=f"arena/{step}", arena=shared_arena,
            )
        return clique.rounds

    fresh_rounds = products(None)
    arena_rounds = products(arena)
    assert fresh_rounds == arena_rounds
    fresh_s = _best_of(lambda: products(None), reps)
    arena_s = _best_of(lambda: products(arena), reps)
    section["arena"] = {
        "n": na,
        "products": 4,
        "fresh_seconds": round(fresh_s, 4),
        "arena_seconds": round(arena_s, 4),
        "session_reuse_speedup": round(fresh_s / arena_s, 2),
    }
    return section


def kernel3_section(reps: int) -> dict:
    """Kernel generation 3, at fixed sizes in every mode (gateable).

    Three rows: threaded tiles vs serial tiles on the packed witness and
    pre-packed Boolean kernels (``cpus``/``threads`` recorded so
    ``bench_check`` can refuse to compare 1-core and multi-core numbers --
    on a 1-core container the speedup honestly measures pure threading
    overhead), and the persistent packed Boolean closure vs the per-product
    packing path at ``n = 512`` (not core-dependent: the win is skipping
    ``ceil(log n)`` pack/unpack passes and shipping 64x fewer payload
    words).  The closure row's deterministic round bill rides along and is
    gated for exact equality; both closure paths are asserted bit-identical
    (values, rounds, per-phase meters) before anything is timed.
    """
    from repro.algebra.backends import backend_info, get_backend
    from repro.algebra.semirings import pack_bool_rows
    from repro.engine.session import open_session

    section: dict[str, dict] = {}
    info = backend_info()
    cpus = info["cpus"]
    # On a multi-core host use the cores; on 1-core, 2 threads measures the
    # honest overhead (and bench_check skips the comparison).
    threads = min(cpus, 8) if cpus > 1 else 2
    threaded = get_backend(f"threaded:{threads}")
    rng = np.random.default_rng(12)
    batch, block = 512, 64

    # ---- threaded tiles on the packed min-plus witness kernel. --------- #
    bx = rng.integers(0, 1000, (batch, block, block), dtype=np.int64)
    by = rng.integers(0, 1000, (batch, block, block), dtype=np.int64)
    bx[rng.random(bx.shape) < 0.1] = INF
    by[rng.random(by.shape) < 0.1] = INF
    sp, sw = MIN_PLUS.matmul_batch_with_witness(bx, by)
    tp, tw = MIN_PLUS.matmul_batch_with_witness(bx, by, backend=threaded)
    assert np.array_equal(sp, tp) and np.array_equal(sw, tw)
    serial_s, threaded_s = _best_of_pair(
        lambda: MIN_PLUS.matmul_batch_with_witness(bx, by),
        lambda: MIN_PLUS.matmul_batch_with_witness(bx, by, backend=threaded),
        reps,
    )
    section["threaded_fold"] = {
        "n": batch,
        "block": block,
        "cpus": cpus,
        "threads": threads,
        "serial_seconds": round(serial_s, 4),
        "threaded_seconds": round(threaded_s, 4),
        "speedup": round(serial_s / threaded_s, 2),
    }

    # ---- threaded tiles on the pre-packed Boolean kernel. -------------- #
    xw = pack_bool_rows((rng.random((batch, block, block)) < 0.3).astype(np.int64))
    yw = pack_bool_rows((rng.random((batch, block, block)) < 0.3).astype(np.int64))
    ref = BOOLEAN.packed_words_matmul_batch(xw, yw, block)
    got = BOOLEAN.packed_words_matmul_batch(xw, yw, block, backend=threaded)
    assert np.array_equal(ref, got)
    serial_s, threaded_s = _best_of_pair(
        lambda: BOOLEAN.packed_words_matmul_batch(xw, yw, block),
        lambda: BOOLEAN.packed_words_matmul_batch(xw, yw, block, backend=threaded),
        reps,
    )
    section["threaded_boolean"] = {
        "n": batch,
        "block": block,
        "cpus": cpus,
        "threads": threads,
        "serial_seconds": round(serial_s, 4),
        "threaded_seconds": round(threaded_s, 4),
        "speedup": round(serial_s / threaded_s, 2),
    }

    # ---- persistent packed closure vs per-product packing, n = 512. ---- #
    nc = 512
    seed_matrix = (rng.random((nc, nc)) < 0.004).astype(np.int64)

    def closure(packed: bool):
        with open_session(
            nc, "semiring", BOOLEAN, packed_closure=packed
        ) as session:
            value = session.closure(seed_matrix)
            return value, session.rounds, list(session.meter.phases)

    packed_value, packed_rounds, packed_phases = closure(True)
    plain_value, plain_rounds, plain_phases = closure(False)
    assert np.array_equal(packed_value, plain_value)
    assert packed_rounds == plain_rounds
    assert packed_phases == plain_phases
    # The persistent path finishes in ~0.1 s, so best-of-more: one noisy
    # scheduling quantum on the fast side would otherwise swing the
    # committed ratio by 2x.
    per_product_s, persistent_s = _best_of_pair(
        lambda: closure(False), lambda: closure(True), max(reps, 5)
    )
    section["packed_persistent_closure"] = {
        "n": nc,
        "rounds": packed_rounds,
        "cpus": cpus,
        "per_product_seconds": round(per_product_s, 4),
        "persistent_seconds": round(persistent_s, 4),
        "speedup": round(per_product_s / persistent_s, 2),
    }
    return section


def spanning_section(reps: int) -> dict:
    """Spanner + MST workloads through engine sessions (fixed size, gated).

    Both rows run at one fixed size in every mode so ``make bench-quick``
    can gate them.  Their simulated **round counts are deterministic** for
    the fixed seeds, and ``bench_check`` gates them for *exact equality* --
    a changed round bill is a behaviour change, not timer noise -- while
    the wall-clock seconds are informational.  Answers are verified against
    the centralised oracles before anything is timed.
    """
    from repro.spanning import (
        build_spanner,
        minimum_spanning_forest,
        mst_reference,
        spanner_stretch,
    )

    section: dict[str, dict] = {}
    n, k = 48, 3
    graph = random_weighted_graph(n, 0.25, max_weight=40, seed=5)

    def run_spanner():
        return build_spanner(graph, k, seed=5)

    result = run_spanner()
    assert spanner_stretch(graph, result.value) <= 2 * k - 1 + 1e-9
    section["spanner_session"] = {
        "n": n,
        "k": k,
        "rounds": result.rounds,
        "edges": result.extras["spanner_edges"],
        "graph_edges": graph.edge_count,
        "seconds": round(_best_of(run_spanner, reps), 4),
    }

    def run_mst():
        return minimum_spanning_forest(graph, seed=5)

    mst_result = run_mst()
    ref_edges, ref_weight = mst_reference(graph)
    assert mst_result.extras["edges"] == ref_edges
    assert mst_result.extras["weight"] == ref_weight
    section["mst_session"] = {
        "n": n,
        "rounds": mst_result.rounds,
        "weight": mst_result.extras["weight"],
        "phases": mst_result.extras["phases"],
        "flight_survivors": mst_result.extras["flight_survivors"],
        "constant_round_phases": {
            key: mst_result.extras["phase_rounds"][key]
            for key in ("labels_announce", "boruvka_candidates", "flight_gather")
        },
        "seconds": round(_best_of(run_mst, reps), 4),
    }
    return section


def faults_section(reps: int) -> dict:
    """Encoded-exchange overhead under seeded adversaries (fixed size, gated).

    One min-plus closure (the exact-APSP core) per scheme x fault kind --
    ``2t+1``-way replication vs GF(2^16) Reed-Solomon striping, against a
    seeded in-budget adversary (flip / drop / crash / byzantine), at one
    fixed size in every mode.  Every row is verified equal to the
    fault-free oracle before anything is timed -- the robustness invariant
    is *no silent wrong answers*, so a row that decodes differently is a
    bug, not a data point.  ``rounds``/``abstract_rounds`` are deterministic
    (the adversary and the relay assignments are pure functions of the
    seeds) and ``bench_check`` gates them for exact equality; the honest
    redundancy bill is their ratio, ``overhead_factor``, asserted strictly
    lower for the coded scheme on every kind.
    """
    from repro.engine.session import EngineSession, make_clique
    from repro.faults import FaultPlan
    from repro.graphs import apsp_reference, random_weighted_digraph
    from repro.runtime import pad_matrix

    n, t = 16, 1
    graph = random_weighted_digraph(n, 0.35, 9, seed=0)
    weights = graph.weight_matrix()
    oracle = apsp_reference(graph)

    def closure(clique):
        session = EngineSession(clique, "semiring", MIN_PLUS)
        padded = pad_matrix(weights, clique.n, fill=INF)
        np.fill_diagonal(padded, 0)
        return session.closure(padded)[:n, :n]

    section: dict[str, dict] = {}
    baseline = make_clique(n, "semiring")
    assert np.array_equal(closure(baseline), oracle)
    section["fault_free_closure"] = {
        "n": n,
        "rounds": baseline.rounds,
        "seconds": round(_best_of(lambda: closure(make_clique(n, "semiring")), reps), 4),
    }

    factors: dict[str, float] = {}
    for scheme, prefix in (("replicate", "robust"), ("coded", "coded")):
        for kind in ("flip", "drop", "crash", "byzantine"):
            def run_encoded(scheme=scheme, kind=kind):
                clique = make_clique(
                    n,
                    "semiring",
                    fault_plan=FaultPlan(t=t, seed=0, kind=kind),
                    fault_tolerance=t,
                    fault_scheme=scheme,
                )
                return clique, closure(clique)

            clique, value = run_encoded()
            assert np.array_equal(value, oracle), (
                f"silent corruption ({scheme}/{kind})"
            )
            assert clique.abstract_meter.rounds == baseline.rounds
            row = {
                "n": n,
                "t": t,
                "scheme": scheme,
                "rounds": clique.meter.rounds,
                "abstract_rounds": clique.abstract_meter.rounds,
                "faults_injected": clique.faults_injected,
                "retries": clique.retries,
                "overhead_factor": round(clique.overhead_factor, 2),
                "seconds": round(_best_of(run_encoded, reps), 4),
            }
            if scheme == "replicate":
                row["copies"] = clique.copies
            section[f"{prefix}_closure_{kind}"] = row
            factors[f"{scheme}/{kind}"] = clique.overhead_factor
    # The PR 9 acceptance anchor: the RS-striped scheme must be strictly
    # cheaper than replication on the identical workload and adversary.
    for kind in ("flip", "drop", "crash", "byzantine"):
        assert factors[f"coded/{kind}"] < factors[f"replicate/{kind}"], factors
    return section


def netsim_section(reps: int) -> dict:
    """Network cost model (PR 10): makespan per topology, fixed size (gated).

    The transport meter is a second, purely observational observer on the
    meter stack, so every row first asserts the invariant that matters:
    rounds and per-phase meters are *bit-identical* to the no-cost-model
    baseline on the identical workload.  Three row families:

    * ``closure_<topology>`` -- one min-plus closure (the exact-APSP core)
      per topology; at equal rounds the alpha-beta makespan must respect
      the bisection ordering ``full <= fat-tree <= ring``, asserted here
      and gated by ``bench_check`` (rows carry a ``topology`` field so the
      gate never compares rows priced on different topologies).
    * ``relay_placement_ring`` -- the scheduling optimisation: a demand
      concentrated on a far-side ring cluster, relayed once through the
      canonical batch-slot intermediates and once through the
      topology-aware assignment.  Rounds are asserted identical (the
      assignment is a round-equivalent degree of freedom); the priced
      makespan must strictly improve.
    * ``<scheme>_closure_<topology>`` -- the PR 6/9 robust closures with a
      transport observer attached: the encoded exchanges (not the abstract
      bill) are priced, so the redundancy gap shows up as wall-clock; the
      RS-striped scheme must beat replication on every topology.
    """
    from repro.engine.session import EngineSession, make_clique
    from repro.faults import FaultPlan
    from repro.graphs import apsp_reference, random_weighted_digraph
    from repro.clique.scheduling import relay_schedule
    from repro.netsim import CostModelSpec, Ring, schedule_makespan
    from repro.runtime import pad_matrix

    n, t = 16, 1
    topologies = ("full", "fat-tree:2", "ring")
    graph = random_weighted_digraph(n, 0.35, 9, seed=0)
    weights = graph.weight_matrix()
    oracle = apsp_reference(graph)

    def closure(clique):
        session = EngineSession(clique, "semiring", MIN_PLUS)
        padded = pad_matrix(weights, clique.n, fill=INF)
        np.fill_diagonal(padded, 0)
        return session.closure(padded)[:n, :n]

    section: dict[str, dict] = {}
    baseline = make_clique(n, "semiring")
    assert np.array_equal(closure(baseline), oracle)

    makespans: dict[str, float] = {}
    for topology in topologies:
        def run(topology=topology):
            clique = make_clique(
                n, "semiring", cost_model=CostModelSpec(topology)
            )
            return clique, closure(clique)

        clique, value = run()
        # The cost model is observational: answers, rounds and the full
        # per-phase meter are bit-identical to the uninstrumented run.
        assert np.array_equal(value, oracle)
        assert clique.meter.rounds == baseline.meter.rounds
        assert clique.meter.phases == baseline.meter.phases
        report = clique.transport.report()
        makespans[topology] = report.makespan_us
        section[f"closure_{topology.replace(':', '')}"] = {
            "n": n,
            "topology": topology,
            "rounds": clique.rounds,
            "makespan_us": round(report.makespan_us, 2),
            "max_link_utilisation": round(report.max_link_utilisation, 4),
            "queueing_share": round(report.queueing_share, 4),
            "seconds": round(_best_of(lambda: run()[0], reps), 4),
        }
    # Equal rounds, monotone makespan in bisection order.
    assert makespans["full"] <= makespans["fat-tree:2"] <= makespans["ring"], (
        makespans
    )

    # Relay-placement optimisation: all-to-all among a far-side cluster.
    ring = Ring(n)
    demand = {
        (u, v): 20 for u in (7, 8, 9) for v in (7, 8, 9) if u != v
    }
    canonical = relay_schedule(dict(demand), n)
    placed = relay_schedule(dict(demand), n, ring)
    assert placed.rounds == canonical.rounds, "placement must not buy rounds"
    base_us = schedule_makespan(canonical, ring)
    placed_us = schedule_makespan(placed, ring)
    assert placed_us < base_us, (base_us, placed_us)
    section["relay_placement_ring"] = {
        "n": n,
        "topology": "ring",
        "rounds": placed.rounds,
        "canonical_makespan_us": round(base_us, 2),
        "placed_makespan_us": round(placed_us, 2),
        "improvement_factor": round(base_us / placed_us, 2),
    }

    # Robust closures priced on the wire: the transport observer sees the
    # actual encoded exchanges, so coded-vs-replicate is a makespan gap too.
    for topology in topologies:
        per_scheme: dict[str, float] = {}
        for scheme in ("replicate", "coded"):
            clique = make_clique(
                n,
                "semiring",
                fault_plan=FaultPlan(t=t, seed=0, kind="byzantine"),
                fault_tolerance=t,
                fault_scheme=scheme,
                cost_model=CostModelSpec(topology),
            )
            assert np.array_equal(closure(clique), oracle)
            assert clique.abstract_meter.rounds == baseline.meter.rounds
            per_scheme[scheme] = clique.transport.makespan_us
            section[f"{scheme}_closure_{topology.replace(':', '')}"] = {
                "n": n,
                "t": t,
                "scheme": scheme,
                "topology": topology,
                "rounds": clique.meter.rounds,
                "abstract_rounds": clique.abstract_meter.rounds,
                "makespan_us": round(clique.transport.makespan_us, 2),
            }
        assert per_scheme["coded"] < per_scheme["replicate"], per_scheme
    return section


def serve_section(reps: int) -> dict:
    """Serving layer (PR 8), fixed sizes in every mode (gateable).

    Four rows:

    * ``artifact_open`` -- building the ``n = 512`` closure artifact vs
      memory-mapping it back: open is a manifest parse plus three mmap
      calls, O(1) in ``n``.  The deterministic build round bill rides
      along and is gated for exact equality.
    * ``dist_batch`` -- the headline: 10k pair queries answered as one
      fancy-index gather against a per-query Python loop over the same
      memmap; values asserted identical (and the >= 50x target asserted)
      before timing.
    * ``delta_update`` -- a 4-edge decrease batch folded into the resident
      closure by the dirty-strip arm vs a forced full rebuild at
      ``n = 64``: closure values asserted edge-for-edge equal first, both
      deterministic round bills exact-equality gated, and the committed
      ``speedup`` is their *ratio* -- rounds, not wall clock, so the row
      cannot flap.
    * ``query_serving`` -- informational qps/p50/p99 through the asyncio
      batching server via the ``load_serve`` harness (wall-clock latency
      on a shared box: reported, not gated).
    """
    import tempfile
    from pathlib import Path as _Path

    from load_serve import run_load
    from repro.engine.session import EngineSession, make_clique
    from repro.runtime import pad_matrix
    from repro.serve import ClosureArtifact, QueryEngine, apply_edge_updates

    section: dict[str, dict] = {}
    rng = np.random.default_rng(21)
    n = 512

    with tempfile.TemporaryDirectory() as tmp:
        path = _Path(tmp) / "closure-512"
        graph = random_weighted_graph(n, 0.02, max_weight=100, seed=7)
        session = EngineSession(
            make_clique(n, "semiring"), "semiring", MIN_PLUS
        )
        started = time.perf_counter()
        artifact = ClosureArtifact.build(session, graph, path)
        build_s = time.perf_counter() - started
        open_s = _best_of(lambda: ClosureArtifact.open(path), max(reps, 10))
        section["artifact_open"] = {
            "n": n,
            "rounds": artifact.rounds,
            "build_seconds": round(build_s, 4),
            "open_seconds": round(open_s, 6),
            "open_to_build_ratio": round(open_s / build_s, 6),
        }

        # ---- batched gather vs the per-query Python loop. -------------- #
        engine = QueryEngine(artifact)
        pairs = 10_000
        us = rng.integers(0, n, pairs)
        vs = rng.integers(0, n, pairs)

        def loop_queries():
            return [engine.dist(int(u), int(v)) for u, v in zip(us, vs)]

        def batch_queries():
            return engine.dist_batch(us, vs)

        assert np.array_equal(np.array(loop_queries()), batch_queries())
        # Both sides are ~ms-scale, so extra reps are nearly free and keep
        # the best-of stable around the asserted 50x floor.
        loop_s, batch_s = _best_of_pair(
            loop_queries, batch_queries, max(reps, 5)
        )
        speedup = loop_s / batch_s
        assert speedup >= 50, f"batch serving target missed: {speedup:.1f}x"
        section["dist_batch"] = {
            "n": n,
            "pairs": pairs,
            "loop_seconds": round(loop_s, 4),
            "batch_seconds": round(batch_s, 6),
            "speedup": round(speedup, 2),
        }

        # ---- the asyncio batching server under concurrent clients. ----- #
        load = run_load(
            path, clients=8, requests_per_client=100, window=0.001, seed=3
        )
        section["query_serving"] = {
            "clients": 8,
            "requests": load["requests"],
            "qps": load["qps"],
            "p50_ms": load["p50_ms"],
            "p99_ms": load["p99_ms"],
            "mean_batch": load["mean_batch"],
        }

    # ---- dirty-strip delta maintenance vs a full rebuild. -------------- #
    nd, k = 64, 4
    dgraph = random_weighted_graph(nd, 0.3, max_weight=50, seed=9)

    def closed_session():
        session = EngineSession(
            make_clique(nd, "semiring"), "semiring", MIN_PLUS
        )
        weights = pad_matrix(dgraph.weight_matrix(), session.n, fill=INF)
        session.seed_resident(weights)
        session.resident_closure()
        return session, weights

    fast, w_fast = closed_session()
    slow, w_slow = closed_session()
    updates: list[tuple[int, int, int]] = []
    while len(updates) < k:
        u, v = (int(x) for x in rng.integers(0, nd, 2))
        if u == v:
            continue
        current = int(w_fast[u, v])
        if current >= INF:
            updates.append((u, v, 1))  # insertion
        elif current > 1:
            updates.append((u, v, current - 1))  # decrease
    started = time.perf_counter()
    delta = apply_edge_updates(fast, w_fast, updates)
    delta_s = time.perf_counter() - started
    started = time.perf_counter()
    rebuild = apply_edge_updates(slow, w_slow, updates, force_rebuild=True)
    rebuild_s = time.perf_counter() - started
    # The values gate: both arms must agree edge for edge before the round
    # bills are worth comparing at all.
    assert delta.mode == "delta" and rebuild.mode == "rebuild"
    # Values must agree edge for edge; hop tables may break shortest-path
    # ties differently between the two arms, so they are validated by the
    # path-chasing tests rather than compared bit for bit here.
    assert np.array_equal(fast.resident.dist, slow.resident.dist)
    assert delta.rounds < rebuild.rounds
    section["delta_update"] = {
        "n": nd,
        "edges": k,
        "dirty": delta.dirty,
        "rounds": delta.rounds,
        "rebuild_rounds": rebuild.rounds,
        "speedup": round(rebuild.rounds / delta.rounds, 2),
        "delta_seconds": round(delta_s, 4),
        "rebuild_seconds": round(rebuild_s, 4),
    }
    return section


def session_section(apsp_n: int, girth_n: int, shards: int, reps: int) -> dict:
    """End-to-end engine sessions: serial vs sharded, cache vs replanning.

    Every sharded run is asserted round- and value-identical to its serial
    twin before anything is timed.  ``shard_speedup`` is serial/sharded wall
    clock -- on a 1-core box this honestly reports the multiprocessing
    overhead (< 1x); the executor exists for multi-core hosts.
    """
    section: dict[str, dict] = {}
    cpus = os.cpu_count() or 1

    # ---- exact APSP (routing tables) through one min-plus session. ----- #
    graph = random_weighted_graph(apsp_n, 0.05, max_weight=100, seed=2)

    def run_apsp(executor):
        clique = CongestedClique(apsp_n, executor=executor)
        return apsp_exact(graph, clique=clique)

    with ShardedExecutor(shards) as sharded:
        serial_run = run_apsp(SERIAL_EXECUTOR)
        shard_run = run_apsp(sharded)
        assert serial_run.rounds == shard_run.rounds
        assert np.array_equal(serial_run.value, shard_run.value)
        serial_s = _best_of(lambda: run_apsp(SERIAL_EXECUTOR), reps)
        shard_s = _best_of(lambda: run_apsp(sharded), reps)
    section["apsp_exact_session"] = {
        "n": apsp_n,
        "rounds": serial_run.rounds,
        "squarings": serial_run.extras["squarings"],
        "serial_seconds": round(serial_s, 4),
        "sharded_seconds": round(shard_s, 4),
        "shards": shards,
        "cpus": cpus,
        "shard_speedup": round(serial_s / shard_s, 2),
    }

    # ---- directed girth (Boolean doubling) through one session. -------- #
    # A directed n-cycle: girth n, so the Corollary 16 session runs the
    # full ~2 log n Boolean products (doubling + binary search).
    dig = Graph.from_edges(
        girth_n,
        [(i, (i + 1) % girth_n) for i in range(girth_n)],
        directed=True,
    )

    def run_girth(executor):
        clique = CongestedClique(girth_n, executor=executor)
        return girth_directed(dig, method="semiring", clique=clique)

    with ShardedExecutor(shards) as sharded:
        serial_run = run_girth(SERIAL_EXECUTOR)
        shard_run = run_girth(sharded)
        assert serial_run.rounds == shard_run.rounds
        assert serial_run.value == shard_run.value
        serial_s = _best_of(lambda: run_girth(SERIAL_EXECUTOR), reps)
        shard_s = _best_of(lambda: run_girth(sharded), reps)
    section["girth_directed_session"] = {
        "n": girth_n,
        "rounds": serial_run.rounds,
        "girth": serial_run.value if serial_run.value < INF else "inf",
        "serial_seconds": round(serial_s, 4),
        "sharded_seconds": round(shard_s, 4),
        "shards": shards,
        "cpus": cpus,
        "shard_speedup": round(serial_s / shard_s, 2),
    }

    # ---- packed witness kernel vs the retained column walk. ------------ #
    # Fixed size in every mode so bench-check can gate it (like kernel_gate):
    # this is the batch shape one n=512 semiring-engine squaring produces.
    rng = np.random.default_rng(6)
    batch, block = 512, 64
    bx = rng.integers(0, 1000, (batch, block, block), dtype=np.int64)
    by = rng.integers(0, 1000, (batch, block, block), dtype=np.int64)
    bx[rng.random(bx.shape) < 0.1] = INF
    by[rng.random(by.shape) < 0.1] = INF
    walk = MIN_PLUS._walk_batch_with_witness(bx, by)
    packed = MIN_PLUS.matmul_batch_with_witness(bx, by)
    assert np.array_equal(walk[0], packed[0]) and np.array_equal(walk[1], packed[1])
    walk_s, packed_s = _best_of_pair(
        lambda: MIN_PLUS._walk_batch_with_witness(bx, by),
        lambda: MIN_PLUS.matmul_batch_with_witness(bx, by),
        reps,
    )
    section["witness_kernel"] = {
        "n": batch,
        "block": block,
        "walk_seconds": round(walk_s, 4),
        "packed_seconds": round(packed_s, 4),
        "speedup": round(walk_s / packed_s, 2),
    }

    # ---- session plan cache: plan construction isolated. --------------- #
    # The old row timed 4 products with and without a cache_clear inside
    # the loop -- at n=512 plan construction is milliseconds against
    # seconds of product, so the ratio was pure timer noise (it read 0.98x
    # in the committed PR 3 report).  Measure the two ingredients
    # separately instead: what one plan construction costs, and what the 4
    # warm products cost; the replanned figure is their exact composition.
    s = _distance_matrix(rng, apsp_n)
    t = _distance_matrix(rng, apsp_n)

    def build_plan():
        cube_plan.cache_clear()
        cube_plan(apsp_n)

    def products():
        clique = CongestedClique(apsp_n)
        for step in range(4):
            semiring_matmul(clique, s, t, MIN_PLUS, phase=f"bench/{step}")

    products()  # warm (also re-warms the plan cache after build_plan)
    plan_build_s = _best_of(build_plan, reps)
    cube_plan(apsp_n)  # leave the cache warm for the product timing
    session_s = _best_of(products, reps)
    replanned_s = session_s + 4 * plan_build_s
    section["plan_cache"] = {
        "n": apsp_n,
        "products": 4,
        "plan_build_seconds": round(plan_build_s, 4),
        "session_seconds": round(session_s, 4),
        "replanned_seconds": round(replanned_s, 4),
        "session_reuse_speedup": round(replanned_s / session_s, 2),
    }

    # ---- session executor reuse: persistent vs per-call worker pools. -- #
    # A sharded session keeps one warm pool for all its squarings; code
    # without sessions would pay pool start-up per product.
    def pooled_products(persistent: bool):
        if persistent:
            with ShardedExecutor(shards) as executor:
                clique = CongestedClique(apsp_n, executor=executor)
                for step in range(4):
                    semiring_matmul(clique, s, t, MIN_PLUS, phase=f"p{step}")
        else:
            for step in range(4):
                with ShardedExecutor(shards) as executor:
                    clique = CongestedClique(apsp_n, executor=executor)
                    semiring_matmul(clique, s, t, MIN_PLUS, phase=f"p{step}")

    pooled_products(True)  # warm the fork machinery
    persistent_s = _best_of(lambda: pooled_products(True), reps)
    per_call_s = _best_of(lambda: pooled_products(False), reps)
    section["executor_reuse"] = {
        "n": apsp_n,
        "products": 4,
        "shards": shards,
        "per_call_pool_seconds": round(per_call_s, 4),
        "session_pool_seconds": round(persistent_s, 4),
        "session_reuse_speedup": round(per_call_s / persistent_s, 2),
    }
    return section


def end_to_end_section(cube_n: int, apsp_n: int, naive_n: int, reps: int) -> dict:
    """Current wall-clock + round numbers for the array-native engines."""
    rng = np.random.default_rng(1)
    section: dict[str, dict] = {}

    s, t = _distance_matrix(rng, cube_n), _distance_matrix(rng, cube_n)

    def run_semiring3d():
        clique = CongestedClique(cube_n)
        semiring_matmul(clique, s, t, MIN_PLUS, with_witnesses=True)
        return clique.rounds

    rounds = run_semiring3d()
    section["semiring3d_minplus_witness"] = {
        "n": cube_n,
        "seconds": round(_best_of(run_semiring3d, reps), 4),
        "rounds": rounds,
    }

    sn, tn = _distance_matrix(rng, naive_n), _distance_matrix(rng, naive_n)

    def run_naive():
        clique = CongestedClique(naive_n)
        broadcast_matmul(clique, sn, tn, MIN_PLUS, with_witnesses=True)
        return clique.rounds

    rounds = run_naive()
    section["naive_minplus_witness"] = {
        "n": naive_n,
        "seconds": round(_best_of(run_naive, reps), 4),
        "rounds": rounds,
    }

    graph = random_weighted_graph(apsp_n, 0.05, max_weight=100, seed=2)

    def run_apsp():
        return apsp_exact(graph, with_routing_tables=True).rounds

    rounds = run_apsp()
    section["apsp_exact_routing_tables"] = {
        "n": apsp_n,
        "seconds": round(_best_of(run_apsp, reps), 4),
        "rounds": rounds,
    }
    return section


def build_report(quick: bool, gate_only: bool = False) -> dict:
    reps = 2 if quick else 3
    kernel_n = 128 if quick else 512
    report = {
        "schema": "repro-perf-report/2",
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    if not gate_only:
        report["kernel"] = kernel_section(kernel_n, reps)
    # The gate section runs at a fixed n=128 in *both* modes so that
    # `make bench-check` (quick run) always has comparable kernel rows
    # against the committed full report.  It runs here, before the
    # heavy end-to-end section, so full-mode baselines are timed under
    # the same machine conditions as the quick gate runs; in quick mode
    # the headline kernel section already ran at 128, so reuse it.
    report["kernel_gate"] = (
        report["kernel"]
        if not gate_only and kernel_n == 128
        else kernel_section(128, reps)
    )
    report["bilinear"] = bilinear_section(256, reps)
    # Fixed n=512 in every mode: at 256 the blocked kernel finishes in
    # ~0.5 ms and the speedup ratio is too noisy to gate on.
    report["boolean_product"] = boolean_section(512, reps)
    # Kernel generation 2: every row at a fixed size, gateable in all modes.
    report["kernel2"] = kernel2_section(reps)
    # Kernel generation 3: threaded tiles + persistent packed closures,
    # fixed sizes in every mode, gateable (threaded rows carry cpus/threads
    # so bench_check refuses cross-core-count comparisons).
    report["kernel3"] = kernel3_section(reps)
    # Spanning workloads (PR 5): fixed size, rounds gated for equality.
    report["spanning"] = spanning_section(reps)
    # Fault-injection overhead (PR 6): fixed size, rounds gated for equality.
    report["faults"] = faults_section(reps)
    # Serving layer (PR 8): fixed sizes, batch speedup + exact round gates.
    report["serve"] = serve_section(reps)
    # Network cost model (PR 10): fixed size, equal rounds, monotone
    # makespan ordering across topologies.
    report["netsim"] = netsim_section(reps)
    if gate_only:
        return report
    report["sessions"] = session_section(
        apsp_n=64 if quick else 512,
        girth_n=27 if quick else 216,
        shards=2,
        reps=reps,
    )
    report["end_to_end"] = end_to_end_section(
        cube_n=64 if quick else 512,
        apsp_n=30 if quick else 100,
        naive_n=64 if quick else 256,
        reps=reps,
    )
    headline = report["kernel"]["min_plus_block_product"]
    bilinear = report["bilinear"]["bilinear_engine"]
    boolean = report["boolean_product"]["boolean_block_product"]
    witness = report["sessions"]["witness_kernel"]
    kernel2 = report["kernel2"]
    report["headline"] = {
        "minplus_block_product_speedup": headline["speedup"],
        "bilinear_engine_speedup": bilinear["speedup"],
        "boolean_block_product_speedup": boolean["speedup"],
        "witness_kernel_speedup": witness["speedup"],
        "batch_axis_witness_speedup": kernel2["batch_axis_witness"]["speedup"],
        "packed_boolean_speedup": kernel2["packed_boolean"]["speedup"],
        "maxmin_witness_speedup": kernel2["maxmin_witness"]["speedup"],
        "arena_speedup": kernel2["arena"]["session_reuse_speedup"],
        "packed_persistent_closure_speedup": report["kernel3"][
            "packed_persistent_closure"
        ]["speedup"],
        "threaded_fold_speedup": report["kernel3"]["threaded_fold"]["speedup"],
        "session_reuse_speedup": report["sessions"]["executor_reuse"][
            "session_reuse_speedup"
        ],
        "plan_cache_speedup": report["sessions"]["plan_cache"][
            "session_reuse_speedup"
        ],
        "serve_dist_batch_speedup": report["serve"]["dist_batch"]["speedup"],
        "serve_delta_round_speedup": report["serve"]["delta_update"]["speedup"],
        "target_speedup": 5.0,
        "engine_target_speedup": 3.0,
        "packed_boolean_target_speedup": 2.0,
        "meets_target": headline["speedup"] >= 5.0
        and bilinear["speedup"] >= 3.0
        and boolean["speedup"] >= 3.0
        and kernel2["packed_boolean"]["speedup"] >= 2.0,
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small sizes (~seconds)")
    parser.add_argument(
        "--gate-only",
        action="store_true",
        help="only the fixed-size gateable sections (the bench-quick lane)",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_matmul.json"),
        help="output JSON path (default: repo-root BENCH_matmul.json)",
    )
    args = parser.parse_args(argv)

    started = time.time()
    report = build_report(quick=args.quick, gate_only=args.gate_only)
    if args.gate_only:
        # The gate lane never overwrites the committed full report.
        print(json.dumps(report, indent=2))
        print(f"\ngate-only report (wall time {time.time() - started:.1f}s)")
        return 0
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(
        f"\nwrote {args.out} "
        f"(headline min-plus speedup: {report['headline']['minplus_block_product_speedup']}x, "
        f"wall time {time.time() - started:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
