"""Kernel generation 2: packed Boolean blocks, packed max-min witnesses,
and arena-backed exchanges.

Every fast path introduced by the second kernel wave keeps an oracle
counterpart, and these tests pin them bit-identical:

* the ``uint64`` bit-packed Boolean kernel against :meth:`cube_matmul` and
  the ``float32`` GEMM path, across densities and across the size-heuristic
  crossover boundary;
* the packed max-min witness kernel against the generic column walk and the
  cube kernel (values *and* tie-breaks), plus an end-to-end bottleneck
  routing-table regression;
* the planned-delivery exchange (``route_array_take``) and the per-session
  :class:`~repro.clique.arena.ExchangeArena` against the sort-based
  delivery: same contents, same rounds, same meter entries, with buffer
  reuse across repeated squarings.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.semirings import BOOLEAN, MAX_MIN, MIN_PLUS
from repro.clique.arena import ExchangeArena
from repro.clique.model import CongestedClique
from repro.constants import INF
from repro.distances import (
    apsp_bottleneck,
    bottleneck_reference,
    validate_bottleneck_routing,
)
from repro.errors import CliqueModelError
from repro.graphs import (
    apsp_reference,
    random_weighted_digraph,
    random_weighted_graph,
)
from repro.matmul.semiring3d import cube_plan, semiring_matmul


# --------------------------------------------------------------------- #
# Bit-packed Boolean kernel
# --------------------------------------------------------------------- #


class TestPackedBoolean:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_matches_cube_and_gemm_across_densities(self, seed):
        rng = np.random.default_rng(seed)
        m, k, n = (int(rng.integers(1, 40)) for _ in range(3))
        density = float(rng.choice([0.0, 0.01, 0.1, 0.5, 0.9, 1.0]))
        x = (rng.random((m, k)) < density).astype(np.int64)
        y = (rng.random((k, n)) < density).astype(np.int64)
        packed = BOOLEAN.packed_matmul(x, y)
        assert np.array_equal(packed, BOOLEAN.cube_matmul(x, y))
        assert np.array_equal(packed, BOOLEAN.gemm_matmul(x, y))
        assert np.array_equal(packed, BOOLEAN.matmul(x, y))

    @pytest.mark.parametrize("dim", [255, 256, 257])
    @pytest.mark.parametrize("density", [0.0, 0.02, 0.5])
    def test_heuristic_crossover_boundary(self, dim, density):
        """Cube sizes straddling the work floor agree on both sides of the
        dispatch (the heuristic may change the kernel, never the values)."""
        rng = np.random.default_rng(dim * 1000 + int(density * 100))
        x = (rng.random((dim, dim)) < density).astype(np.int64)
        y = (rng.random((dim, dim)) < density).astype(np.int64)
        assert BOOLEAN._use_packed(dim, dim, dim) == (
            dim**3 >= BOOLEAN.PACKED_MIN_WORK
        )
        dispatched = BOOLEAN.matmul(x, y)
        assert np.array_equal(dispatched, BOOLEAN.gemm_matmul(x, y))
        assert np.array_equal(dispatched, BOOLEAN.packed_matmul(x, y))

    def test_work_based_dispatch_crossover(self):
        """The crossover, pinned: total work decides, not the smallest dim.

        Skinny-but-huge blocks (small ``m``, huge ``k``/``n``) clear the
        work floor and take the Four Russians kernel -- the shapes the old
        ``min(m, k, n) >= 256`` floor wrongly kept on the GEMM tile -- while
        the small per-node blocks the engines batch stay on the GEMM path.
        """
        # Skinny-but-huge: old min-dim floor said GEMM, work floor says packed.
        assert BOOLEAN._use_packed(64, 4096, 4096)
        assert BOOLEAN._use_packed(32, 2048, 4096)
        # Cube shapes: same verdicts as the old 256 floor.
        assert BOOLEAN._use_packed(256, 256, 256)
        assert not BOOLEAN._use_packed(255, 255, 255)
        # Engine-batch blocks (64^3 work) stay on the measured-faster GEMM.
        assert not BOOLEAN._use_packed(64, 64, 64)
        # Pack-width floors: degenerate trailing/inner dims never pack,
        # whatever the work.
        assert not BOOLEAN._use_packed(10**6, 10**6, 63)
        assert not BOOLEAN._use_packed(10**6, 7, 10**6)

    def test_skinny_dispatch_values_exact(self):
        """A skinny shape past the work floor: dispatched == GEMM == cube."""
        rng = np.random.default_rng(11)
        m, k, n = 5, 1024, 4096  # m*k*n just above 256**3
        assert BOOLEAN._use_packed(m, k, n)
        x = (rng.random((m, k)) < 0.2).astype(np.int64)
        y = (rng.random((k, n)) < 0.2).astype(np.int64)
        dispatched = BOOLEAN.matmul(x, y)
        assert np.array_equal(dispatched, BOOLEAN.gemm_matmul(x, y))

    def test_nonsquare_and_word_boundaries(self):
        """Shapes around the 8-bit chunk and byte-packing boundaries."""
        rng = np.random.default_rng(7)
        for m, k, n in [(1, 1, 1), (3, 8, 9), (5, 9, 8), (64, 65, 63),
                        (17, 128, 2), (2, 7, 300)]:
            x = (rng.random((m, k)) < 0.3).astype(np.int64)
            y = (rng.random((k, n)) < 0.3).astype(np.int64)
            assert np.array_equal(
                BOOLEAN.packed_matmul(x, y), BOOLEAN.cube_matmul(x, y)
            ), (m, k, n)

    def test_empty_dimensions(self):
        zero = np.zeros((3, 0), dtype=np.int64)
        out = BOOLEAN.packed_matmul(zero, np.zeros((0, 4), dtype=np.int64))
        assert out.shape == (3, 4) and not out.any()

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_batch_matches_per_block(self, seed):
        rng = np.random.default_rng(seed)
        batch = int(rng.integers(1, 6))
        m, k, n = (int(rng.integers(1, 30)) for _ in range(3))
        x = (rng.random((batch, m, k)) < 0.2).astype(np.int64)
        y = (rng.random((batch, k, n)) < 0.2).astype(np.int64)
        got = BOOLEAN.packed_matmul_batch(x, y)
        want = np.stack(
            [BOOLEAN.cube_matmul(x[b], y[b]) for b in range(batch)]
        )
        assert np.array_equal(got, want)
        assert np.array_equal(BOOLEAN.matmul_batch(x, y), want)

    def test_nonbinary_inputs_thresholded(self):
        """Like the other kernels, any positive entry counts as 1."""
        x = np.array([[5, 0, -2], [0, 3, 0]], dtype=np.int64)
        y = np.array([[1, 0], [0, 7], [2, 0]], dtype=np.int64)
        assert np.array_equal(
            BOOLEAN.packed_matmul(x, y), BOOLEAN.cube_matmul(x, y)
        )


class TestPersistentPackedClosure:
    """Kernel generation 3 rides on the gen-2 packed kernel: closures kept
    bit-packed across squarings must be invisible next to the per-product
    packing path and the seed cube oracle."""

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_packed_closure_matches_unpacked_and_oracle(self, seed):
        from repro.engine import open_session

        rng = np.random.default_rng(seed)
        n = int(rng.choice([8, 27]))
        density = float(rng.choice([0.03, 0.15, 0.6]))
        a = (rng.random((n, n)) < density).astype(np.int64)
        with open_session(n, "semiring", BOOLEAN) as packed:
            pc = packed.closure(a)
            packed_rounds = packed.rounds
            packed_phases = list(packed.meter.phases)
        with open_session(n, "semiring", BOOLEAN, packed_closure=False) as plain:
            uc = plain.closure(a)
            assert packed_rounds == plain.rounds
            assert packed_phases == plain.meter.phases
        assert np.array_equal(pc, uc)
        # Seed oracle: dense Boolean repeated squaring with absorb.
        reach = a > 0
        for _ in range(max(1, int(np.ceil(np.log2(max(2, n)))))):
            reach = reach | (reach @ reach)
        assert np.array_equal(pc, reach.astype(np.int64))


# --------------------------------------------------------------------- #
# Packed max-min witness kernel
# --------------------------------------------------------------------- #


class TestPackedMaxMinWitness:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_matches_walk_and_cube(self, seed):
        rng = np.random.default_rng(seed)
        batch = int(rng.integers(1, 6))
        m, k, n = (int(rng.integers(1, 9)) for _ in range(3))
        hi = int(rng.choice([2, 50, 1 << 40]))
        x = rng.integers(-hi, hi + 1, (batch, m, k), dtype=np.int64)
        y = rng.integers(-hi, hi + 1, (batch, k, n), dtype=np.int64)
        for mat in (x, y):
            mat[rng.random(mat.shape) < 0.2] = INF
            mat[rng.random(mat.shape) < 0.2] = -INF
        p, w = MAX_MIN.matmul_batch_with_witness(x, y)
        wp, ww = MAX_MIN._generic_walk_batch_with_witness(x, y)
        assert np.array_equal(p, wp)
        assert np.array_equal(w, ww)
        for b in range(batch):
            cp, cw = MAX_MIN.cube_matmul_with_witness(x[b], y[b])
            assert np.array_equal(p[b], cp)
            assert np.array_equal(w[b], cw)

    def test_tie_break_lowest_index_under_max(self):
        """Equal bottlenecks must pick the smallest inner index (argmax
        convention) -- the reversed-tag encoding under the max."""
        x = np.array([[5, 5, 5]], dtype=np.int64)
        y = np.array([[7], [5], [9]], dtype=np.int64)
        p, w = MAX_MIN.matmul_with_witness(x, y)
        assert p[0, 0] == 5 and w[0, 0] == 0

    def test_all_neg_inf_and_all_pos_inf_conventions(self):
        neg = np.full((2, 3), -INF, dtype=np.int64)
        p, w = MAX_MIN.matmul_with_witness(neg, np.full((3, 2), -INF, np.int64))
        assert np.all(p == -INF) and np.all(w == 0)
        pos = np.full((2, 3), INF, dtype=np.int64)
        p, w = MAX_MIN.matmul_with_witness(pos, np.full((3, 2), INF, np.int64))
        assert np.all(p == INF) and np.all(w == 0)

    def test_huge_entries_take_walk_fallback(self):
        big = 1 << 61
        x = np.array([[[big, -big]]], dtype=np.int64)
        y = np.array([[[big], [-big]]], dtype=np.int64)
        assert MAX_MIN._pack_parameters(x, y) is None
        p, w = MAX_MIN.matmul_batch_with_witness(x, y)
        wp, ww = MAX_MIN._generic_walk_batch_with_witness(x, y)
        assert np.array_equal(p, wp) and np.array_equal(w, ww)

    def test_empty_inner_dimension(self):
        x = np.zeros((1, 2, 0), dtype=np.int64)
        y = np.zeros((1, 0, 3), dtype=np.int64)
        p, w = MAX_MIN.matmul_batch_with_witness(x, y)
        assert np.all(p == -INF) and np.all(w == 0)


class TestBottleneckRoutingRegression:
    """End-to-end: the packed max-min kernel drives Corollary-6-style
    bottleneck routing tables through the engine session."""

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_routing_tables_realise_widest_paths(self, seed):
        g = random_weighted_digraph(14, 0.3, 25, seed=seed)
        result = apsp_bottleneck(g, with_routing_tables=True)
        assert np.array_equal(result.value, bottleneck_reference(g))
        assert validate_bottleneck_routing(
            g, result.value, result.extras["next_hop"]
        )

    def test_undirected_routing_on_cube_clique(self):
        g = random_weighted_graph(27, 0.25, 40, seed=3)
        result = apsp_bottleneck(g, with_routing_tables=True)
        assert np.array_equal(result.value, bottleneck_reference(g))
        assert validate_bottleneck_routing(
            g, result.value, result.extras["next_hop"]
        )


# --------------------------------------------------------------------- #
# Arena-backed exchanges
# --------------------------------------------------------------------- #


class TestExchangeArena:
    def test_buffer_identity_and_reallocation(self):
        arena = ExchangeArena()
        a = arena.buffer("x", (3, 4))
        assert not a.any()  # born zeroed
        a[:] = 7
        assert arena.buffer("x", (3, 4)) is a  # same key+shape: same buffer
        b = arena.buffer("x", (2, 2))  # shape change: fresh zeroed buffer
        assert b.shape == (2, 2) and not b.any()
        assert arena.buffer("y", (3, 4)) is not a
        assert len(arena) == 2 and arena.nbytes() > 0


class TestRouteArrayTake:
    def test_matches_route_array_contents_and_charges(self, rng):
        n = 8
        p = 3
        dests = rng.integers(0, n, (n, p), dtype=np.int64)
        blocks = rng.integers(-9, 10, (n, p, 4), dtype=np.int64)
        widths = np.full((n, p), 4, dtype=np.int64)
        ref_clique = CongestedClique(n)
        flat = ref_clique.route_array(
            dests, blocks, widths=widths, phase="ref", flat=True
        )
        # The planned gather reproducing the sorted delivery order.
        order = np.argsort(dests.reshape(-1), kind="stable")
        take_clique = CongestedClique(n)
        got = take_clique.route_array_take(
            dests, blocks, widths=widths, take=order, phase="ref"
        )
        assert np.array_equal(got, flat.blocks)
        assert ref_clique.rounds == take_clique.rounds
        ref_phase = ref_clique.meter.phases[0]
        take_phase = take_clique.meter.phases[0]
        assert ref_phase == take_phase

    def test_out_buffer_is_filled_and_returned(self, rng):
        n = 4
        dests = np.tile(np.arange(n, dtype=np.int64), (n, 1))
        blocks = rng.integers(0, 5, (n, n, 2), dtype=np.int64)
        out = np.empty((n * n, 2), dtype=np.int64)
        clique = CongestedClique(n)
        got = clique.route_array_take(
            dests,
            blocks,
            take=np.argsort(dests.reshape(-1), kind="stable"),
            out=out,
        )
        assert got is out

    def test_take_out_of_range_rejected(self, rng):
        n = 4
        dests = np.tile(np.arange(n, dtype=np.int64), (n, 1))
        blocks = rng.integers(0, 5, (n, n, 2), dtype=np.int64)
        clique = CongestedClique(n)
        with pytest.raises(CliqueModelError):
            clique.route_array_take(
                dests, blocks, take=np.array([0, n * n], dtype=np.int64)
            )

    def test_owners_enforce_receiver_locality(self, rng):
        """An in-range gather that reads another node's traffic is rejected
        when the caller ships the slot-owner vector."""
        n = 4
        dests = np.tile(np.arange(n, dtype=np.int64), (n, 1))
        blocks = rng.integers(0, 5, (n, n, 2), dtype=np.int64)
        order = np.argsort(dests.reshape(-1), kind="stable")
        owners = np.repeat(np.arange(n, dtype=np.int64), n)
        good = CongestedClique(n).route_array_take(
            dests, blocks, take=order, owners=owners
        )
        ref = CongestedClique(n).route_array(dests, blocks, flat=True)
        assert np.array_equal(good, ref.blocks)
        bad_take = order.copy()
        # Swap one piece across an inbox boundary: still in range, but the
        # slot owned by node 0 now reads a piece addressed to node 1.
        bad_take[0], bad_take[-1] = bad_take[-1], bad_take[0]
        with pytest.raises(CliqueModelError):
            CongestedClique(n).route_array_take(
                dests, blocks, take=bad_take, owners=owners
            )


class TestArenaBackedEngine:
    def test_cube_plan_takes_are_permutations(self):
        plan = cube_plan(27)
        q2 = plan.q * plan.q
        assert sorted(plan.take_st.tolist()) == list(range(27 * 2 * q2))
        assert sorted(plan.take3.tolist()) == list(range(27 * q2))

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_arena_reuse_is_invisible(self, seed):
        """Repeated squarings through one arena == fresh arenas == PR 3
        behaviour: same values, witnesses, rounds and meter entries."""
        rng = np.random.default_rng(seed)
        n = 27
        d = rng.integers(0, 100, (n, n), dtype=np.int64)
        d[rng.random((n, n)) < 0.3] = INF
        np.fill_diagonal(d, 0)
        shared = ExchangeArena()
        shared_clique = CongestedClique(n)
        fresh_clique = CongestedClique(n)
        cur_shared, cur_fresh = d, d
        for step in range(3):
            ps, ws = semiring_matmul(
                shared_clique, cur_shared, cur_shared, MIN_PLUS,
                with_witnesses=True, phase=f"sq{step}", arena=shared,
            )
            pf, wf = semiring_matmul(
                fresh_clique, cur_fresh, cur_fresh, MIN_PLUS,
                with_witnesses=True, phase=f"sq{step}", arena=None,
            )
            assert np.array_equal(ps, pf), step
            assert np.array_equal(ws, wf), step
            cur_shared, cur_fresh = ps, pf
        assert shared_clique.rounds == fresh_clique.rounds
        assert shared_clique.meter.phases == fresh_clique.meter.phases

    def test_results_do_not_alias_arena_buffers(self):
        """Products must return fresh arrays: a later product through the
        same arena may not mutate an earlier result."""
        rng = np.random.default_rng(11)
        n = 27
        a = rng.integers(0, 50, (n, n), dtype=np.int64)
        b = rng.integers(0, 50, (n, n), dtype=np.int64)
        arena = ExchangeArena()
        clique = CongestedClique(n)
        first = semiring_matmul(clique, a, a, MIN_PLUS, arena=arena)
        snapshot = first.copy()
        semiring_matmul(clique, b, b, MIN_PLUS, arena=arena)
        assert np.array_equal(first, snapshot)

    def test_bilinear_arena_reuse_is_invisible(self):
        rng = np.random.default_rng(5)
        n = 16
        from repro.engine import EngineSession

        x = rng.integers(-9, 10, (n, n), dtype=np.int64)
        session_clique = CongestedClique(n)
        fresh_clique = CongestedClique(n)
        session = EngineSession(session_clique, "bilinear")
        cur = x
        for step in range(3):
            from repro.matmul.bilinear_clique import bilinear_matmul

            want = bilinear_matmul(
                fresh_clique, cur, cur, session.algorithm,
                phase=f"session/sq{step}",
            )
            got = session.square(cur, phase=f"session/sq{step}")
            assert np.array_equal(got, want), step
            assert np.array_equal(got, cur @ cur), step
            cur = got
        assert session_clique.rounds == fresh_clique.rounds
        assert session_clique.meter.phases == fresh_clique.meter.phases


# --------------------------------------------------------------------- #
# Resident min-plus closures (the serving layer's build side)
# --------------------------------------------------------------------- #


class TestResidentMinPlus:
    """PR 8 extends gen-3's persistence to the selection semirings: a
    min-plus closure kept session-resident between squarings (the state
    the serve/delta layer maintains) must be invisible next to the
    caller-matrix witness closure -- same values, same routing table,
    same rounds, same meter entries."""

    @staticmethod
    def _seed(session, graph):
        """The apsp_exact seed: padded weights + edge-to-column routing."""
        from repro.runtime import pad_matrix

        dist = pad_matrix(graph.weight_matrix(), session.n, fill=INF)
        hops = np.full((session.n, session.n), -1, dtype=np.int64)
        rows, cols = np.nonzero(dist < INF)
        hops[rows, cols] = cols
        np.fill_diagonal(hops, np.arange(session.n))
        return dist, hops

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_resident_closure_matches_caller_matrix_closure(self, seed):
        from repro.engine import open_session

        rng = np.random.default_rng(seed)
        n = int(rng.choice([8, 19]))
        density = float(rng.choice([0.1, 0.3, 0.7]))
        graph = random_weighted_graph(n, density, max_weight=40, seed=seed)
        with open_session(n, "semiring", MIN_PLUS) as caller:
            dist, hops = self._seed(caller, graph)
            out = caller.closure(dist, with_witnesses=True, next_hop=hops)
            caller_rounds = caller.rounds
            caller_phases = list(caller.meter.phases)
        with open_session(n, "semiring", MIN_PLUS) as resident:
            seed_dist, seed_hops = self._seed(resident, graph)
            state = resident.seed_resident(seed_dist)
            # The default routing seed is exactly the apsp_exact seed.
            assert np.array_equal(state.next_hop, seed_hops)
            got = resident.resident_closure()
            assert got is state.dist
            assert resident.rounds == caller_rounds
            assert list(resident.meter.phases) == caller_phases
            assert np.array_equal(got, out)
            assert np.array_equal(state.next_hop, hops)
        assert np.array_equal(got[:n, :n], apsp_reference(graph))

    def test_resident_square_reaches_fixed_point(self):
        from repro.engine import open_session

        graph = random_weighted_graph(14, 0.4, max_weight=20, seed=5)
        with open_session(14, "naive", MIN_PLUS) as session:
            dist, _ = self._seed(session, graph)
            session.seed_resident(dist)
            improved = [session.resident_square() for _ in range(6)]
            # Progress first, then a stable fixed point (n=14 closes in 4).
            assert improved[0] is True
            assert improved[-1] is False
            assert session.resident.squarings == 6
            before = session.resident.dist.copy()
            assert not session.resident_square()
            assert np.array_equal(session.resident.dist, before)

    def test_max_min_resident_closure_matches_caller_matrix(self):
        """The resident path is semiring-generic: bottleneck works too."""
        from repro.engine import open_session

        rng = np.random.default_rng(9)
        n = 8  # perfect cube: the session matrices stay n x n
        a = rng.integers(0, 30, (n, n), dtype=np.int64)
        np.fill_diagonal(a, INF)
        with open_session(n, "semiring", MAX_MIN) as caller:
            hops = np.arange(n, dtype=np.int64) * np.ones((n, n), np.int64)
            cap = caller.closure(
                a.copy(), with_witnesses=True, next_hop=hops.copy()
            )
            caller_rounds = caller.rounds
        with open_session(n, "semiring", MAX_MIN) as resident:
            resident.seed_resident(a)
            got = resident.resident_closure()
            assert resident.rounds == caller_rounds
            assert np.array_equal(got, cap)

    def test_resident_binding_rules(self):
        from repro.engine import EngineBindingError, EngineSession, open_session

        with open_session(4, "bilinear") as ring:
            with pytest.raises(EngineBindingError):
                ring.seed_resident(np.zeros((ring.n, ring.n), dtype=np.int64))
        boolean = EngineSession(CongestedClique(8), "semiring", BOOLEAN)
        zeros = np.zeros((8, 8), dtype=np.int64)
        with pytest.raises(EngineBindingError):
            boolean.seed_resident(zeros)  # no witnesses, no routing tables

    def test_resident_state_errors(self):
        from repro.engine import open_session

        with open_session(6, "naive", MIN_PLUS) as session:
            with pytest.raises(RuntimeError, match="seed_resident"):
                session.resident_square()
            with pytest.raises(RuntimeError, match="seed_resident"):
                session.resident_closure()
            with pytest.raises(ValueError, match="6 x 6"):
                session.seed_resident(np.zeros((3, 3), dtype=np.int64))
            state = session.seed_resident(np.zeros((6, 6), dtype=np.int64))
            with pytest.raises(ValueError, match="next_hop"):
                session.seed_resident(
                    np.zeros((6, 6), dtype=np.int64),
                    next_hop=np.zeros((2, 2), dtype=np.int64),
                )
            assert session.resident is state
            session.drop_resident()
            assert session.resident is None
            session.drop_resident()  # idempotent
