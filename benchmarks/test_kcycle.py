"""E6 -- Table 1 "k-cycle detection": 2^{O(k)} n^rho log n via colour coding.

A fixed small trial budget isolates the growth in n (the 2^{O(k)} constants
are what they are -- the per-trial product counts are also recorded).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import planted_cycle_graph
from repro.matmul.exponent import fit_exponent
from repro.subgraphs import detect_k_cycle

from .conftest import run_once

# Colour-coding trials make this the most expensive benchmark family.
pytestmark = pytest.mark.slow

SIZES = [16, 49, 100]


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("k", [4, 5])
def test_kcycle_detection(benchmark, n, k):
    g = planted_cycle_graph(n, k, seed=n + k, extra_edge_prob=0.5)

    def run():
        return detect_k_cycle(g, k, trials=2, rng=np.random.default_rng(0))

    result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = result.rounds
    benchmark.extra_info["k"] = k
    benchmark.extra_info["trials_used"] = result.extras["trials_used"]


def test_kcycle_growth_in_n(benchmark):
    k = 4

    def run():
        return [
            detect_k_cycle(
                planted_cycle_graph(n, k, seed=n, extra_edge_prob=0.5),
                k,
                trials=1,
                rng=np.random.default_rng(1),
            ).rounds
            for n in SIZES
        ]

    rounds = run_once(benchmark, run)
    benchmark.extra_info["rounds"] = rounds
    benchmark.extra_info["fitted_exponent"] = fit_exponent(SIZES, rounds)
    # Sub-linear growth: the point of using the fast engine per product.
    assert fit_exponent(SIZES, rounds) < 1.0


def test_kcycle_growth_in_k(benchmark):
    n = 49

    def run():
        return [
            detect_k_cycle(
                planted_cycle_graph(n, k, seed=k, extra_edge_prob=0.5),
                k,
                trials=1,
                rng=np.random.default_rng(2),
            ).rounds
            for k in (3, 4, 5, 6)
        ]

    rounds = run_once(benchmark, run)
    benchmark.extra_info["rounds_by_k"] = rounds
    # The exponential-in-k blow-up (product count ~ 3^k) is visible.
    assert rounds[-1] > rounds[0]
