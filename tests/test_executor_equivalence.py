"""Sharded vs serial executors: bit-identical values, rounds and meters.

The local-compute executor only moves block products between processes --
it must be invisible to everything else: identical answers, identical
witness/routing tables, identical round charges and identical per-phase
meter entries for every algorithm, on every engine.  These tests run the
same workloads on both backends (one shared worker pool, fast-lane sizes)
and compare everything; a `slow`-marked smoke test exercises the
multiprocessing path at a bigger size for CI.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.semirings import (
    ALL_SEMIRINGS,
    BOOLEAN,
    MAX_MIN,
    MIN_PLUS,
    PLUS_TIMES,
    Semiring,
    _SelectionSemiring,
)
from repro.clique.executor import (
    SERIAL_EXECUTOR,
    LocalExecutor,
    ShardedExecutor,
    make_executor,
    shard_ranges,
)
from repro.clique.model import CongestedClique
from repro.constants import INF
from repro.distances import apsp_exact, girth_directed
from repro.distances.components import connected_components
from repro.engine import EngineSession
from repro.graphs.generators import gnp_random_graph, random_weighted_graph
from repro.matmul.ringops import INTEGER_RING, POLYNOMIAL_RING


@pytest.fixture(scope="module")
def sharded():
    """One worker pool for the whole module (sessions reuse it the same way)."""
    executor = ShardedExecutor(2)
    yield executor
    executor.close()


def _clique_pair(n: int, sharded_executor) -> tuple[CongestedClique, CongestedClique]:
    return (
        CongestedClique(n, executor=SERIAL_EXECUTOR),
        CongestedClique(n, executor=sharded_executor),
    )


def assert_same_run(serial, shard):
    """Two RunResults must agree on answer, rounds and every meter entry."""
    if isinstance(serial.value, np.ndarray):
        assert np.array_equal(serial.value, shard.value)
    else:
        assert serial.value == shard.value
    assert serial.rounds == shard.rounds
    assert serial.clique_size == shard.clique_size
    assert serial.meter.phases == shard.meter.phases
    for key, val in serial.extras.items():
        other = shard.extras[key]
        if isinstance(val, np.ndarray):
            assert np.array_equal(val, other), key
        else:
            assert val == other, key


class TestShardRanges:
    def test_partition_covers_batch(self):
        assert shard_ranges(10, 3) == [(0, 3), (3, 6), (6, 10)]
        assert shard_ranges(2, 8) == [(0, 1), (1, 2)]
        assert shard_ranges(0, 4) == []

    def test_make_executor(self):
        assert make_executor(1) is SERIAL_EXECUTOR
        executor = make_executor(3)
        assert isinstance(executor, ShardedExecutor)
        assert executor.shards == 3
        executor.close()
        with pytest.raises(ValueError):
            make_executor(0)


class TestBatchProducts:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_semiring_products_identical(self, sharded, seed):
        rng = np.random.default_rng(seed)
        batch, m = int(rng.integers(2, 10)), int(rng.integers(1, 8))
        for semiring in ALL_SEMIRINGS:
            x = rng.integers(-20, 60, (batch, m, m))
            y = rng.integers(-20, 60, (batch, m, m))
            if semiring is MIN_PLUS:
                x[rng.random(x.shape) < 0.3] = INF
                y[rng.random(y.shape) < 0.3] = INF
            ref = SERIAL_EXECUTOR.semiring_products(semiring, x, y)
            got = sharded.semiring_products(semiring, x, y)
            assert np.array_equal(ref, got), semiring.name
            if semiring.has_witnesses:
                rp, rw = SERIAL_EXECUTOR.semiring_products(
                    semiring, x, y, with_witnesses=True
                )
                gp, gw = sharded.semiring_products(
                    semiring, x, y, with_witnesses=True
                )
                assert np.array_equal(rp, gp), semiring.name
                assert np.array_equal(rw, gw), semiring.name

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_boolean_packed_products_identical(self, sharded, seed):
        from repro.algebra.semirings import pack_bool_rows, unpack_bool_rows

        rng = np.random.default_rng(seed)
        batch = int(rng.integers(2, 10))
        m, k, n = (int(rng.integers(1, 30)) for _ in range(3))
        x = (rng.random((batch, m, k)) < 0.3).astype(np.int64)
        y = (rng.random((batch, k, n)) < 0.3).astype(np.int64)
        xw, yw = pack_bool_rows(x), pack_bool_rows(y)
        ref = SERIAL_EXECUTOR.boolean_packed_products(xw, yw, k)
        got = sharded.boolean_packed_products(xw, yw, k)
        assert np.array_equal(ref, got)
        assert np.array_equal(
            unpack_bool_rows(ref, n), BOOLEAN.matmul_batch(x, y)
        )

    def test_executor_thread_combinations_identical(self):
        """Every shards x threads combination computes the same products."""
        rng = np.random.default_rng(13)
        x = rng.integers(-20, 60, (6, 9, 9), dtype=np.int64)
        y = rng.integers(-20, 60, (6, 9, 9), dtype=np.int64)
        x[rng.random(x.shape) < 0.3] = INF
        y[rng.random(y.shape) < 0.3] = INF
        ref_p, ref_w = SERIAL_EXECUTOR.semiring_products(
            MIN_PLUS, x, y, with_witnesses=True
        )
        for shards, threads in ((1, 2), (2, 1), (2, 2)):
            executor = make_executor(shards, threads)
            try:
                got_p, got_w = executor.semiring_products(
                    MIN_PLUS, x, y, with_witnesses=True
                )
                assert np.array_equal(ref_p, got_p), (shards, threads)
                assert np.array_equal(ref_w, got_w), (shards, threads)
            finally:
                if executor is not SERIAL_EXECUTOR:
                    executor.close()

    def test_ring_products_identical(self, sharded, rng):
        x = rng.integers(-9, 10, (7, 6, 6))
        y = rng.integers(-9, 10, (7, 6, 6))
        assert np.array_equal(
            sharded.ring_products(INTEGER_RING, x, y),
            SERIAL_EXECUTOR.ring_products(INTEGER_RING, x, y),
        )
        xp = rng.integers(0, 2, (5, 4, 4, 3))
        yp = rng.integers(0, 2, (5, 4, 4, 2))
        assert np.array_equal(
            sharded.ring_products(POLYNOMIAL_RING, xp, yp),
            SERIAL_EXECUTOR.ring_products(POLYNOMIAL_RING, xp, yp),
        )


class _PerBlockOracleExecutor(LocalExecutor):
    """Reference executor: a Python loop of *seed oracle* kernels per block.

    Independent of every batch-axis kernel (cube kernels for the selection
    semirings, the cube AND-reduce for Boolean, plain ``@`` for the rings),
    so driving a whole engine product through it pins the batched kernels'
    values, witness tie-breaks, shipped widths and meter entries at once.
    """

    name = "per-block-oracle"
    shards = 1

    def semiring_products(
        self, semiring, lefts, rights, *, with_witnesses=False
    ):
        lefts = np.asarray(lefts, dtype=np.int64)
        rights = np.asarray(rights, dtype=np.int64)
        if with_witnesses:
            pairs = [
                semiring.cube_matmul_with_witness(lefts[b], rights[b])
                for b in range(lefts.shape[0])
            ]
            return (
                np.stack([p for p, _ in pairs]),
                np.stack([w for _, w in pairs]),
            )
        blocks = []
        for b in range(lefts.shape[0]):
            if isinstance(semiring, _SelectionSemiring):
                blocks.append(semiring.cube_matmul_with_witness(lefts[b], rights[b])[0])
            elif semiring is BOOLEAN:
                blocks.append(semiring.cube_matmul(lefts[b], rights[b]))
            else:
                blocks.append(lefts[b] @ rights[b])
        return np.stack(blocks)

    def ring_products(self, ring, lefts, rights):
        return np.stack(
            [
                ring.matmul(np.asarray(lefts)[b], np.asarray(rights)[b])
                for b in range(np.asarray(lefts).shape[0])
            ]
        )


def _batch_operands(rng, semiring: Semiring, batch: int, m: int, k: int, n: int):
    hi = int(rng.choice([4, 50, 1 << 40]))
    x = rng.integers(-hi, hi + 1, (batch, m, k), dtype=np.int64)
    y = rng.integers(-hi, hi + 1, (batch, k, n), dtype=np.int64)
    if semiring is MIN_PLUS:
        x[rng.random(x.shape) < 0.3] = INF
        y[rng.random(y.shape) < 0.3] = INF
    elif semiring is MAX_MIN:
        for mat in (x, y):
            mat[rng.random(mat.shape) < 0.2] = INF
            mat[rng.random(mat.shape) < 0.2] = -INF
    elif semiring is BOOLEAN:
        x = (x > 0).astype(np.int64)
        y = (y > 0).astype(np.int64)
    return x, y


class TestBatchAxisKernels:
    """The gen-2 batch-axis kernels vs the retained per-block loop."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_values_match_per_block_loop(self, seed):
        rng = np.random.default_rng(seed)
        batch = int(rng.integers(1, 8))
        m, k, n = (int(rng.integers(0, 9)) for _ in range(3))
        for semiring in ALL_SEMIRINGS:
            x, y = _batch_operands(rng, semiring, batch, max(1, m), k, max(1, n))
            got = semiring.matmul_batch(x, y)
            want = np.stack(
                [semiring.matmul(x[b], y[b]) for b in range(batch)]
            )
            assert np.array_equal(got, want), semiring.name

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_witnesses_match_per_block_loop(self, seed):
        rng = np.random.default_rng(seed)
        batch = int(rng.integers(1, 8))
        m, k, n = (int(rng.integers(0, 9)) for _ in range(3))
        for semiring in (MIN_PLUS, MAX_MIN):
            x, y = _batch_operands(rng, semiring, batch, max(1, m), k, max(1, n))
            got_p, got_w = semiring.matmul_batch_with_witness(x, y)
            pairs = [
                semiring.matmul_with_witness(x[b], y[b]) for b in range(batch)
            ]
            assert np.array_equal(got_p, np.stack([p for p, _ in pairs]))
            assert np.array_equal(got_w, np.stack([w for _, w in pairs]))
            # ... and against the fully independent generic walk.
            walk_p, walk_w = semiring._generic_walk_batch_with_witness(x, y)
            assert np.array_equal(got_p, walk_p), semiring.name
            assert np.array_equal(got_w, walk_w), semiring.name

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_engine_products_pin_widths_and_meters(self, seed):
        """A whole engine product on the per-block-oracle executor charges
        bit-identical meters (values -> widths -> rounds) to the batched
        kernels, for every semiring."""
        rng = np.random.default_rng(seed)
        for semiring in ALL_SEMIRINGS:
            x, y = _batch_operands(rng, semiring, 1, 27, 27, 27)
            x, y = x[0], y[0]
            fast_clique, oracle_clique = (
                CongestedClique(27, executor=SERIAL_EXECUTOR),
                CongestedClique(27, executor=_PerBlockOracleExecutor()),
            )
            fast = EngineSession(fast_clique, "semiring", semiring)
            oracle = EngineSession(oracle_clique, "semiring", semiring)
            with_wit = semiring.has_witnesses
            if with_wit:
                fp, fw = fast.multiply(x, y, with_witnesses=True)
                op, ow = oracle.multiply(x, y, with_witnesses=True)
                assert np.array_equal(fw, ow), semiring.name
            else:
                fp = fast.multiply(x, y)
                op = oracle.multiply(x, y)
            assert np.array_equal(fp, op), semiring.name
            assert fast_clique.rounds == oracle_clique.rounds
            assert fast_clique.meter.phases == oracle_clique.meter.phases


class TestAlgorithmEquivalence:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_apsp_exact_with_routing_tables(self, sharded, seed):
        graph = random_weighted_graph(
            4 + seed % 9, 0.4, max_weight=20, seed=seed
        )
        serial_clique, shard_clique = _clique_pair(27, sharded)
        serial = apsp_exact(graph, clique=serial_clique)
        shard = apsp_exact(graph, clique=shard_clique)
        assert_same_run(serial, shard)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_girth_directed(self, sharded, seed):
        graph = gnp_random_graph(4 + seed % 9, 0.25, seed=seed, directed=True)
        for method, size in (("semiring", 27), ("naive", graph.n)):
            if size < 2:
                continue
            serial_clique, shard_clique = _clique_pair(size, sharded)
            serial = girth_directed(graph, method=method, clique=serial_clique)
            shard = girth_directed(graph, method=method, clique=shard_clique)
            assert_same_run(serial, shard)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_boolean_closure_components(self, sharded, seed):
        graph = gnp_random_graph(4 + seed % 9, 0.2, seed=seed)
        for method, size in (("semiring", 27), ("bilinear", 16)):
            if size < graph.n:
                continue
            serial_clique, shard_clique = _clique_pair(size, sharded)
            serial = connected_components(
                graph, method=method, clique=serial_clique
            )
            shard = connected_components(
                graph, method=method, clique=shard_clique
            )
            assert_same_run(serial, shard)

    def test_min_plus_witness_squaring(self, sharded, rng):
        d = rng.integers(0, 100, (27, 27))
        d[rng.random((27, 27)) < 0.2] = INF
        np.fill_diagonal(d, 0)
        serial_clique, shard_clique = _clique_pair(27, sharded)
        s_sess = EngineSession(serial_clique, "semiring", MIN_PLUS)
        p_sess = EngineSession(shard_clique, "semiring", MIN_PLUS)
        sp, sw = s_sess.multiply(d, d, with_witnesses=True)
        pp, pw = p_sess.multiply(d, d, with_witnesses=True)
        assert np.array_equal(sp, pp)
        assert np.array_equal(sw, pw)
        assert serial_clique.meter.phases == shard_clique.meter.phases


@pytest.mark.slow
class TestShardSmoke:
    """Bigger multiprocessing smoke (run in CI via `pytest -m slow -k shard`)."""

    def test_large_apsp_and_bilinear_sharded(self):
        with ShardedExecutor(3) as executor:
            graph = random_weighted_graph(40, 0.15, max_weight=50, seed=7)
            serial = apsp_exact(
                graph, clique=CongestedClique(64, executor=SERIAL_EXECUTOR)
            )
            shard = apsp_exact(
                graph, clique=CongestedClique(64, executor=executor)
            )
            assert_same_run(serial, shard)

            rng = np.random.default_rng(11)
            s = rng.integers(-9, 10, (64, 64))
            serial_clique = CongestedClique(64, executor=SERIAL_EXECUTOR)
            shard_clique = CongestedClique(64, executor=executor)
            ref = EngineSession(serial_clique, "bilinear").multiply(s, s)
            got = EngineSession(shard_clique, "bilinear").multiply(s, s)
            assert np.array_equal(ref, got)
            assert np.array_equal(ref, s @ s)
            assert serial_clique.meter.phases == shard_clique.meter.phases
