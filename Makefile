# Convenience lanes.  PYTHONPATH is set per target so `make test` works
# from a clean checkout without an install.
PY := PYTHONPATH=src python

.PHONY: test test-full bench perf-report bench-check bench-quick shard-smoke table1

test:        ## fast lane (default pytest config: -m "not slow")
	$(PY) -m pytest -q

shard-smoke: ## exercise the sharded (multiprocessing) executor end to end
	$(PY) -m pytest tests/test_executor_equivalence.py -m slow -q

test-full:   ## full suite including slow tests
	$(PY) -m pytest -q -m ""

bench:       ## pytest-benchmark suites only
	$(PY) -m pytest benchmarks -q -m ""

perf-report: ## kernel + messaging perf report -> BENCH_matmul.json
	$(PY) benchmarks/perf_report.py

bench-check: ## fail if a quick perf run regresses >25% vs committed BENCH_matmul.json
	$(PY) benchmarks/bench_check.py

bench-quick: ## gate-sized rows only (kernel_gate/bilinear/boolean/kernel2/kernel3/spanning/faults/serve/netsim) -- the CI fast lane
	$(PY) benchmarks/bench_check.py --gate-only

table1:      ## the consolidated measured Table 1
	$(PY) benchmarks/table1_harness.py
