#!/usr/bin/env python
"""Girth computation and k-cycle detection (§3.2, Theorem 3).

Workloads exercising both branches of Theorem 15: a sparse graph whose
structure every node simply learns (O(m/n) rounds), and a dense graph where
colour-coding detection takes over.  Also shows directed girth
(Corollary 16) and explicit k-cycle detection with its certificate
semantics (positives are certified; completeness is probabilistic).

Run: ``python examples/girth_and_cycles.py [n]`` (default 36).
"""

from __future__ import annotations

import sys

import numpy as np

from repro import detect_k_cycle, girth_directed, girth_undirected
from repro.graphs import (
    cycle_graph,
    cycle_with_trees,
    dense_small_girth_graph,
    girth_reference,
    planted_cycle_graph,
)


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 36
    rng = np.random.default_rng(1)

    sparse = cycle_with_trees(n, girth=7, seed=3)
    res = girth_undirected(sparse)
    print(f"sparse graph  (m={sparse.edge_count:4d}): girth={res.value} "
          f"[{res.rounds} rounds, branch={res.extras['branch']}, "
          f"reference={girth_reference(sparse)}]")

    dense = dense_small_girth_graph(min(n, 25), seed=4)
    res = girth_undirected(dense, trials_per_k=10, rng=rng)
    print(f"dense graph   (m={dense.edge_count:4d}): girth={res.value} "
          f"[{res.rounds} rounds, branch={res.extras['branch']}, "
          f"reference={girth_reference(dense)}]")

    ring = cycle_graph(n - 1, directed=True)
    res = girth_directed(ring)
    print(f"directed C_{n-1}          : girth={res.value} "
          f"[{res.rounds} rounds, {res.extras['boolean_products']} Boolean "
          f"products]")

    planted = planted_cycle_graph(n, 5, seed=9, extra_edge_prob=0.5)
    res = detect_k_cycle(planted, 5, trials=30, rng=rng)
    print(f"planted C5 detection      : found={res.value} "
          f"[{res.extras['trials_used']} colourings, {res.rounds} rounds]")

    tree_like = cycle_with_trees(n, girth=9, seed=5)
    res = detect_k_cycle(tree_like, 5, trials=5, rng=rng)
    print(f"C5 detection on girth-9   : found={res.value} "
          f"(soundness: no false positives, ever)")
    assert not res.value

    # Girth's Boolean products ride the array-native §2.2 engine; the
    # retained tuple formulation must charge the identical round count.
    from repro.clique import CongestedClique
    from repro.matmul.bilinear_clique import bilinear_matmul, bilinear_matmul_tuple
    from repro.matmul.layout import next_square
    from repro.runtime import pad_matrix

    nsq = next_square(planted.n)
    adj = pad_matrix(planted.adjacency, nsq)
    array_clique, tuple_clique = CongestedClique(nsq), CongestedClique(nsq)
    p_array = bilinear_matmul(array_clique, adj, adj)
    p_tuple = bilinear_matmul_tuple(tuple_clique, adj, adj)
    assert (p_array == p_tuple).all()
    assert array_clique.rounds == tuple_clique.rounds
    print(f"engine check: bilinear array path rounds == tuple path rounds"
          f" ({array_clique.rounds})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
