"""Unit tests for word-size arithmetic and outbox validation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.clique.messages import (
    default_word_bits,
    int_bits,
    validate_outboxes,
    words_for_array,
    words_for_value,
)


class TestWordBits:
    def test_minimum_is_16(self):
        assert default_word_bits(2) == 16
        assert default_word_bits(100) == 16

    def test_grows_with_log_n(self):
        assert default_word_bits(2**10) == 20
        assert default_word_bits(2**20) == 40

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            default_word_bits(0)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_word_always_fits_two_node_ids(self, n):
        import math

        bits = default_word_bits(n)
        id_bits = max(1, math.ceil(math.log2(max(2, n))))
        assert bits >= 2 * id_bits


class TestIntBits:
    def test_small_values(self):
        assert int_bits(0) == 2  # sign + 1 magnitude bit
        assert int_bits(1) == 2
        assert int_bits(255) == 9

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            int_bits(-1)

    @given(st.integers(min_value=0, max_value=2**60))
    def test_monotone(self, x):
        assert int_bits(x + 1) >= int_bits(x)


class TestWordsForValue:
    def test_unit_width_small_values(self):
        assert words_for_value(100, 16) == 1

    def test_wide_values_need_more_words(self):
        assert words_for_value(2**40, 16) == 3  # 42 bits / 16

    @given(
        st.integers(min_value=0, max_value=2**62 - 1),
        st.integers(min_value=8, max_value=64),
    )
    def test_width_covers_encoding(self, value, word_bits):
        words = words_for_value(value, word_bits)
        assert words * word_bits >= int_bits(value)


class TestWordsForArray:
    def test_empty_array_is_free(self):
        assert words_for_array(np.array([], dtype=np.int64), 16) == 0

    def test_unit_entries(self):
        arr = np.ones(10, dtype=np.int64)
        assert words_for_array(arr, 16) == 10

    def test_wide_entries_charged_per_entry(self):
        arr = np.full(4, 2**40, dtype=np.int64)
        assert words_for_array(arr, 16) == 12

    def test_bool_arrays(self):
        arr = np.ones(6, dtype=bool)
        assert words_for_array(arr, 16) == 6

    def test_width_uses_max_abs(self):
        arr = np.array([1, -(2**40)], dtype=np.int64)
        assert words_for_array(arr, 16) == 2 * 3


class TestValidateOutboxes:
    def test_valid(self):
        validate_outboxes([[(1, "x", 1)], []], n=2)

    def test_wrong_length(self):
        with pytest.raises(ValueError):
            validate_outboxes([[]], n=2)

    def test_destination_out_of_range(self):
        with pytest.raises(ValueError):
            validate_outboxes([[(5, "x", 1)], []], n=2)

    def test_self_message_rejected_by_default(self):
        with pytest.raises(ValueError):
            validate_outboxes([[(0, "x", 1)], []], n=2)

    def test_self_message_allowed_when_opted_in(self):
        validate_outboxes([[(0, "x", 1)], []], n=2, allow_self=True)

    def test_nonpositive_width(self):
        with pytest.raises(ValueError):
            validate_outboxes([[(1, "x", 0)], []], n=2)

    def test_malformed_item(self):
        with pytest.raises(ValueError):
            validate_outboxes([[(1, "x")], []], n=2)  # type: ignore[list-item]


class TestPayloadHygiene:
    """PR 6 satellite: malformed payloads die loudly, naming the node."""

    def test_nan_payload_names_node(self):
        with pytest.raises(ValueError, match="node 1: non-finite payload"):
            validate_outboxes([[], [(0, float("nan"), 1)]], n=2)

    def test_inf_payload_rejected(self):
        with pytest.raises(ValueError, match="node 0"):
            validate_outboxes([[(1, float("inf"), 1)], []], n=2)

    def test_object_dtype_array_names_node(self):
        bad = np.array([object(), object()], dtype=object)
        with pytest.raises(ValueError, match="node 1: object-dtype payload"):
            validate_outboxes([[], [(0, bad, 2)]], n=2)

    def test_nan_array_entries_name_node(self):
        bad = np.array([1.0, float("nan")])
        with pytest.raises(ValueError, match="node 0: non-finite entries"):
            validate_outboxes([[(1, bad, 2)], []], n=2)

    def test_finite_float_arrays_pass(self):
        validate_outboxes([[(1, np.array([1.5, -2.0]), 2)], []], n=2)

    def test_negative_width_names_node(self):
        with pytest.raises(ValueError, match="node 1: non-positive word count"):
            validate_outboxes([[], [(0, "x", -3)]], n=2)


class TestBlockWidths:
    """PR 6 satellite: batch width helpers reject unchargeable batches."""

    def test_object_dtype_batch_rejected(self):
        from repro.clique.messages import block_widths

        bad = np.empty((2, 2), dtype=object)
        bad.fill("x")
        with pytest.raises(ValueError, match="object-dtype batch"):
            block_widths(bad, 16)

    def test_nan_batch_names_offending_piece(self):
        from repro.clique.messages import block_widths

        blocks = np.ones((3, 2))
        blocks[2, 1] = float("nan")
        with pytest.raises(ValueError, match="piece 2"):
            block_widths(blocks, 16)

    def test_flat_batch_rejected(self):
        from repro.clique.messages import block_widths

        with pytest.raises(ValueError, match="batch"):
            block_widths(np.arange(4), 16)

    def test_empty_trailing_shape_is_free(self):
        from repro.clique.messages import block_widths

        widths = block_widths(np.zeros((3, 0), dtype=np.int64), 16)
        assert np.array_equal(widths, np.zeros(3, dtype=np.int64))
