#!/usr/bin/env python
"""Performance report for the semiring kernel + messaging fast path.

Usage::

    PYTHONPATH=src python benchmarks/perf_report.py              # full report
    PYTHONPATH=src python benchmarks/perf_report.py --quick      # small sizes
    PYTHONPATH=src python benchmarks/perf_report.py --out X.json

Times four layers and writes ``BENCH_matmul.json``:

* **Kernels** -- the blocked min-plus / max-min block-product kernels
  (:mod:`repro.algebra.semirings`) against the seed's cube-materialising
  kernel (retained as ``cube_matmul_with_witness``), at ``n ~ 512``.  The
  seed implemented *both* ``matmul`` and ``matmul_with_witness`` via the
  cube kernel, so it is the baseline for both entry points.
* **Bilinear engine** -- the array-native §2.2 engine against the retained
  per-payload tuple formulation (``bilinear_matmul_tuple``), at ``n = 256``
  in every mode so ``make bench-check`` can gate it.
* **Boolean product** -- the blocked Boolean kernel against the retained
  cube-materialising ``cube_matmul`` baseline, at ``n = 256``.
* **Kernel gate** -- the kernel section re-run at a fixed ``n = 128`` in
  every mode, so ``make bench-check`` always has comparable kernel rows.
* **Sessions** -- the end-to-end engine-session pipeline: exact APSP and
  directed girth through one bound session on the serial vs the sharded
  executor (identical rounds asserted), the packed witness kernel vs the
  retained column-walk baseline (fixed size in every mode, gateable), and
  the session plan cache vs per-call replanning.
* **End to end** -- the 3D semiring engine and the APSP driver on the
  array-native messaging path, with their metered round counts, seeding the
  perf trajectory for future PRs.

Timings are best-of-``reps`` wall clock; simulated round counts are
deterministic.  Shard speedups depend on available cores (the ``cpus``
field records them) -- on a single-core box the sharded rows measure pure
multiprocessing overhead, honestly reported.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

# Allow `python benchmarks/perf_report.py` without an explicit PYTHONPATH.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.algebra.semirings import BOOLEAN, MAX_MIN, MIN_PLUS, get_block_tile
from repro.clique.executor import SERIAL_EXECUTOR, ShardedExecutor
from repro.clique.model import CongestedClique
from repro.constants import INF
from repro.distances.apsp import apsp_exact
from repro.distances.girth import girth_directed
from repro.graphs.generators import random_weighted_graph
from repro.graphs.graphs import Graph
from repro.matmul.bilinear_clique import bilinear_matmul, bilinear_matmul_tuple
from repro.matmul.naive import broadcast_matmul
from repro.matmul.semiring3d import cube_plan, semiring_matmul


def _best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _distance_matrix(rng: np.random.Generator, n: int) -> np.ndarray:
    mat = rng.integers(0, 1000, (n, n), dtype=np.int64)
    mat[rng.random((n, n)) < 0.1] = INF
    return mat


def _bottleneck_matrix(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.integers(-1000, 1000, (n, n), dtype=np.int64)


def kernel_section(n: int, reps: int) -> dict:
    """Blocked kernels vs the seed cube kernel on one n x n block product."""
    rng = np.random.default_rng(0)
    section: dict[str, dict] = {}
    for semiring, make in (
        (MIN_PLUS, _distance_matrix),
        (MAX_MIN, _bottleneck_matrix),
    ):
        x, y = make(rng, n), make(rng, n)
        # Correctness cross-check before timing anything.
        p_cube, w_cube = semiring.cube_matmul_with_witness(x, y)
        p_blk, w_blk = semiring.matmul_with_witness(x, y)
        assert np.array_equal(p_cube, p_blk), semiring.name
        assert np.array_equal(w_cube, w_blk), semiring.name
        assert np.array_equal(semiring.matmul(x, y), p_cube), semiring.name

        cube_s = _best_of(lambda: semiring.cube_matmul_with_witness(x, y), reps)
        plain_s = _best_of(lambda: semiring.matmul(x, y), reps)
        witness_s = _best_of(lambda: semiring.matmul_with_witness(x, y), reps)
        key = semiring.name.replace("-", "_")
        section[f"{key}_block_product"] = {
            "n": n,
            "tile": get_block_tile(),
            "seed_cube_seconds": round(cube_s, 4),
            "blocked_seconds": round(plain_s, 4),
            "speedup": round(cube_s / plain_s, 2),
        }
        section[f"{key}_block_product_with_witness"] = {
            "n": n,
            "seed_cube_seconds": round(cube_s, 4),
            "blocked_seconds": round(witness_s, 4),
            "speedup": round(cube_s / witness_s, 2),
        }
    return section


def bilinear_section(n: int, reps: int) -> dict:
    """Array-native §2.2 engine vs the retained tuple-outbox formulation."""
    rng = np.random.default_rng(3)
    s = rng.integers(-9, 10, (n, n), dtype=np.int64)
    t = rng.integers(-9, 10, (n, n), dtype=np.int64)

    # Correctness + round-equivalence cross-check before timing anything.
    array_clique = CongestedClique(n)
    tuple_clique = CongestedClique(n)
    p_array = bilinear_matmul(array_clique, s, t)
    p_tuple = bilinear_matmul_tuple(tuple_clique, s, t)
    assert np.array_equal(p_array, s @ t)
    assert np.array_equal(p_tuple, p_array)
    assert array_clique.rounds == tuple_clique.rounds

    tuple_s = _best_of(
        lambda: bilinear_matmul_tuple(CongestedClique(n), s, t), reps
    )
    array_s = _best_of(lambda: bilinear_matmul(CongestedClique(n), s, t), reps)
    return {
        "bilinear_engine": {
            "n": n,
            "rounds": array_clique.rounds,
            "tuple_seconds": round(tuple_s, 4),
            "array_seconds": round(array_s, 4),
            "speedup": round(tuple_s / array_s, 2),
        }
    }


def boolean_section(n: int, reps: int) -> dict:
    """Blocked Boolean kernel vs the cube-materialising baseline."""
    rng = np.random.default_rng(4)
    x = (rng.random((n, n)) < 0.05).astype(np.int64)
    y = (rng.random((n, n)) < 0.05).astype(np.int64)
    assert np.array_equal(BOOLEAN.matmul(x, y), BOOLEAN.cube_matmul(x, y))
    cube_s = _best_of(lambda: BOOLEAN.cube_matmul(x, y), reps)
    blocked_s = _best_of(lambda: BOOLEAN.matmul(x, y), reps)
    return {
        "boolean_block_product": {
            "n": n,
            "tile": BOOLEAN.BOOL_TILE,
            "cube_seconds": round(cube_s, 4),
            "blocked_seconds": round(blocked_s, 4),
            "speedup": round(cube_s / blocked_s, 2),
        }
    }


def session_section(apsp_n: int, girth_n: int, shards: int, reps: int) -> dict:
    """End-to-end engine sessions: serial vs sharded, cache vs replanning.

    Every sharded run is asserted round- and value-identical to its serial
    twin before anything is timed.  ``shard_speedup`` is serial/sharded wall
    clock -- on a 1-core box this honestly reports the multiprocessing
    overhead (< 1x); the executor exists for multi-core hosts.
    """
    section: dict[str, dict] = {}
    cpus = os.cpu_count() or 1

    # ---- exact APSP (routing tables) through one min-plus session. ----- #
    graph = random_weighted_graph(apsp_n, 0.05, max_weight=100, seed=2)

    def run_apsp(executor):
        clique = CongestedClique(apsp_n, executor=executor)
        return apsp_exact(graph, clique=clique)

    with ShardedExecutor(shards) as sharded:
        serial_run = run_apsp(SERIAL_EXECUTOR)
        shard_run = run_apsp(sharded)
        assert serial_run.rounds == shard_run.rounds
        assert np.array_equal(serial_run.value, shard_run.value)
        serial_s = _best_of(lambda: run_apsp(SERIAL_EXECUTOR), reps)
        shard_s = _best_of(lambda: run_apsp(sharded), reps)
    section["apsp_exact_session"] = {
        "n": apsp_n,
        "rounds": serial_run.rounds,
        "squarings": serial_run.extras["squarings"],
        "serial_seconds": round(serial_s, 4),
        "sharded_seconds": round(shard_s, 4),
        "shards": shards,
        "cpus": cpus,
        "shard_speedup": round(serial_s / shard_s, 2),
    }

    # ---- directed girth (Boolean doubling) through one session. -------- #
    # A directed n-cycle: girth n, so the Corollary 16 session runs the
    # full ~2 log n Boolean products (doubling + binary search).
    dig = Graph.from_edges(
        girth_n,
        [(i, (i + 1) % girth_n) for i in range(girth_n)],
        directed=True,
    )

    def run_girth(executor):
        clique = CongestedClique(girth_n, executor=executor)
        return girth_directed(dig, method="semiring", clique=clique)

    with ShardedExecutor(shards) as sharded:
        serial_run = run_girth(SERIAL_EXECUTOR)
        shard_run = run_girth(sharded)
        assert serial_run.rounds == shard_run.rounds
        assert serial_run.value == shard_run.value
        serial_s = _best_of(lambda: run_girth(SERIAL_EXECUTOR), reps)
        shard_s = _best_of(lambda: run_girth(sharded), reps)
    section["girth_directed_session"] = {
        "n": girth_n,
        "rounds": serial_run.rounds,
        "girth": serial_run.value if serial_run.value < INF else "inf",
        "serial_seconds": round(serial_s, 4),
        "sharded_seconds": round(shard_s, 4),
        "shards": shards,
        "cpus": cpus,
        "shard_speedup": round(serial_s / shard_s, 2),
    }

    # ---- packed witness kernel vs the retained column walk. ------------ #
    # Fixed size in every mode so bench-check can gate it (like kernel_gate):
    # this is the batch shape one n=512 semiring-engine squaring produces.
    rng = np.random.default_rng(6)
    batch, block = 512, 64
    bx = rng.integers(0, 1000, (batch, block, block), dtype=np.int64)
    by = rng.integers(0, 1000, (batch, block, block), dtype=np.int64)
    bx[rng.random(bx.shape) < 0.1] = INF
    by[rng.random(by.shape) < 0.1] = INF
    walk = MIN_PLUS._walk_batch_with_witness(bx, by)
    packed = MIN_PLUS.matmul_batch_with_witness(bx, by)
    assert np.array_equal(walk[0], packed[0]) and np.array_equal(walk[1], packed[1])
    walk_s = _best_of(lambda: MIN_PLUS._walk_batch_with_witness(bx, by), reps)
    packed_s = _best_of(lambda: MIN_PLUS.matmul_batch_with_witness(bx, by), reps)
    section["witness_kernel"] = {
        "n": batch,
        "block": block,
        "walk_seconds": round(walk_s, 4),
        "packed_seconds": round(packed_s, 4),
        "speedup": round(walk_s / packed_s, 2),
    }

    # ---- session plan cache vs per-call replanning. -------------------- #
    s = _distance_matrix(rng, apsp_n)
    t = _distance_matrix(rng, apsp_n)

    def products(replan: bool):
        clique = CongestedClique(apsp_n)
        for step in range(4):
            if replan:
                cube_plan.cache_clear()
            semiring_matmul(clique, s, t, MIN_PLUS, phase=f"bench/{step}")

    products(replan=False)  # warm
    session_s = _best_of(lambda: products(replan=False), reps)
    replanned_s = _best_of(lambda: products(replan=True), reps)
    section["plan_cache"] = {
        "n": apsp_n,
        "products": 4,
        "replanned_seconds": round(replanned_s, 4),
        "session_seconds": round(session_s, 4),
        "session_reuse_speedup": round(replanned_s / session_s, 2),
    }

    # ---- session executor reuse: persistent vs per-call worker pools. -- #
    # A sharded session keeps one warm pool for all its squarings; code
    # without sessions would pay pool start-up per product.
    def pooled_products(persistent: bool):
        if persistent:
            with ShardedExecutor(shards) as executor:
                clique = CongestedClique(apsp_n, executor=executor)
                for step in range(4):
                    semiring_matmul(clique, s, t, MIN_PLUS, phase=f"p{step}")
        else:
            for step in range(4):
                with ShardedExecutor(shards) as executor:
                    clique = CongestedClique(apsp_n, executor=executor)
                    semiring_matmul(clique, s, t, MIN_PLUS, phase=f"p{step}")

    pooled_products(True)  # warm the fork machinery
    persistent_s = _best_of(lambda: pooled_products(True), reps)
    per_call_s = _best_of(lambda: pooled_products(False), reps)
    section["executor_reuse"] = {
        "n": apsp_n,
        "products": 4,
        "shards": shards,
        "per_call_pool_seconds": round(per_call_s, 4),
        "session_pool_seconds": round(persistent_s, 4),
        "session_reuse_speedup": round(per_call_s / persistent_s, 2),
    }
    return section


def end_to_end_section(cube_n: int, apsp_n: int, naive_n: int, reps: int) -> dict:
    """Current wall-clock + round numbers for the array-native engines."""
    rng = np.random.default_rng(1)
    section: dict[str, dict] = {}

    s, t = _distance_matrix(rng, cube_n), _distance_matrix(rng, cube_n)

    def run_semiring3d():
        clique = CongestedClique(cube_n)
        semiring_matmul(clique, s, t, MIN_PLUS, with_witnesses=True)
        return clique.rounds

    rounds = run_semiring3d()
    section["semiring3d_minplus_witness"] = {
        "n": cube_n,
        "seconds": round(_best_of(run_semiring3d, reps), 4),
        "rounds": rounds,
    }

    sn, tn = _distance_matrix(rng, naive_n), _distance_matrix(rng, naive_n)

    def run_naive():
        clique = CongestedClique(naive_n)
        broadcast_matmul(clique, sn, tn, MIN_PLUS, with_witnesses=True)
        return clique.rounds

    rounds = run_naive()
    section["naive_minplus_witness"] = {
        "n": naive_n,
        "seconds": round(_best_of(run_naive, reps), 4),
        "rounds": rounds,
    }

    graph = random_weighted_graph(apsp_n, 0.05, max_weight=100, seed=2)

    def run_apsp():
        return apsp_exact(graph, with_routing_tables=True).rounds

    rounds = run_apsp()
    section["apsp_exact_routing_tables"] = {
        "n": apsp_n,
        "seconds": round(_best_of(run_apsp, reps), 4),
        "rounds": rounds,
    }
    return section


def build_report(quick: bool) -> dict:
    reps = 2 if quick else 3
    kernel_n = 128 if quick else 512
    kernel = kernel_section(kernel_n, reps)
    report = {
        "schema": "repro-perf-report/2",
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "kernel": kernel,
        # The gate section runs at a fixed n=128 in *both* modes so that
        # `make bench-check` (quick run) always has comparable kernel rows
        # against the committed full report.  It runs here, before the
        # heavy end-to-end section, so full-mode baselines are timed under
        # the same machine conditions as the quick gate runs; in quick mode
        # the headline kernel section already ran at 128, so reuse it.
        "kernel_gate": kernel if kernel_n == 128 else kernel_section(128, reps),
        "bilinear": bilinear_section(256, reps),
        # Fixed n=512 in every mode: at 256 the blocked kernel finishes in
        # ~0.5 ms and the speedup ratio is too noisy to gate on.
        "boolean_product": boolean_section(512, reps),
        "sessions": session_section(
            apsp_n=64 if quick else 512,
            girth_n=27 if quick else 216,
            shards=2,
            reps=reps,
        ),
        "end_to_end": end_to_end_section(
            cube_n=64 if quick else 512,
            apsp_n=30 if quick else 100,
            naive_n=64 if quick else 256,
            reps=reps,
        ),
    }
    headline = report["kernel"]["min_plus_block_product"]
    bilinear = report["bilinear"]["bilinear_engine"]
    boolean = report["boolean_product"]["boolean_block_product"]
    witness = report["sessions"]["witness_kernel"]
    report["headline"] = {
        "minplus_block_product_speedup": headline["speedup"],
        "bilinear_engine_speedup": bilinear["speedup"],
        "boolean_block_product_speedup": boolean["speedup"],
        "witness_kernel_speedup": witness["speedup"],
        "session_reuse_speedup": report["sessions"]["executor_reuse"][
            "session_reuse_speedup"
        ],
        "plan_cache_speedup": report["sessions"]["plan_cache"][
            "session_reuse_speedup"
        ],
        "target_speedup": 5.0,
        "engine_target_speedup": 3.0,
        "meets_target": headline["speedup"] >= 5.0
        and bilinear["speedup"] >= 3.0
        and boolean["speedup"] >= 3.0,
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small sizes (~seconds)")
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_matmul.json"),
        help="output JSON path (default: repo-root BENCH_matmul.json)",
    )
    args = parser.parse_args(argv)

    started = time.time()
    report = build_report(quick=args.quick)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(
        f"\nwrote {args.out} "
        f"(headline min-plus speedup: {report['headline']['minplus_block_product_speedup']}x, "
        f"wall time {time.time() - started:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
