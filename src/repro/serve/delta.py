"""Incremental closure maintenance: re-square only the dirty strips.

The dirty-strip algebra
-----------------------

Let ``D`` be a valid min-plus closure (with routing table ``R``) of weight
matrix ``W``, and apply edge updates whose endpoint set is the *dirty* set
``S`` of size ``s``.  When every update is a **decrease or insertion**
(``w' <= W[u, v]``, including ``W[u, v] = INF`` non-edges), every old path
survives with its old weight, and every new shortest path decomposes at
its visits to ``S``:

    ``d'(a, b) = min( D[a, b],
                      min over x, y in S of D[a, x] + H*(x, y) + D[y, b] )``

where ``H*`` is the min-plus closure of the ``s x s`` *hub* seed
``H[x, y] = min(D[x, y], W'[x, y])`` -- segments between consecutive dirty
nodes are either old shortest paths or a (possibly updated) direct edge.
Proof sketch: ``<=`` because every term is achievable in the updated
graph; ``>=`` because any ``a -> b`` path's maximal dirty-free segments
each weigh at least the old distance between their endpoints (updated
edges have both endpoints dirty, so they can only appear *as* a segment,
covered by the ``W'`` seed).

That formula is exactly two rectangular min-plus witness products
(:func:`repro.matmul.semiring3d.strip_product_with_witness`) over the
``n x s`` / ``s x n`` dirty strips -- a bounded number of batched kernel
calls -- after two row broadcasts put ``H*``'s seed and the ``s`` dirty
distance rows on every node.  Those broadcasts are the entire round bill:
``O(s)``-row payloads against the ``ceil(log n)`` full re-squarings a
rebuild would run.  Routing tables update node-locally from the witness
pair plus first-waypoint bookkeeping carried through the hub closure.

A weight **increase** (or deletion) invalidates old closure entries that
rode the changed edge, which the resident state cannot detect locally;
:func:`apply_edge_updates` then falls back to a full resident rebuild
from the updated weights.  Negative-weight updates are allowed; a
negative cycle created by an update raises
:class:`~repro.errors.NegativeCycleError`, detected on the hub-closure /
candidate diagonals before the resident closure is mutated (the weight
matrix does already carry the updates at that point).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.algebra.semirings import MIN_PLUS, saturating_add
from repro.clique.messages import block_widths
from repro.constants import INF
from repro.errors import NegativeCycleError
from repro.matmul.semiring3d import strip_product_with_witness
from repro.serve.artifact import ClosureArtifact


@dataclass
class DeltaReport:
    """What one :func:`apply_edge_updates` call did and billed."""

    #: ``"delta"`` (dirty-strip update) or ``"rebuild"`` (full re-closure).
    mode: str
    #: Distinct edges updated.
    updates: int
    #: Dirty endpoint count ``s``.
    dirty: int
    #: Rounds billed on the session's clique by this call.
    rounds: int
    #: Closure entries that improved (``-1`` for rebuilds: not tracked).
    improved: int
    #: Artifact generation after commit (``-1`` without an artifact).
    generation: int = -1
    #: Why the rebuild arm ran, when it did.
    rebuild_reason: str | None = None

    def as_dict(self) -> dict:
        return asdict(self)


def _normalise_updates(
    updates, n: int
) -> dict[tuple[int, int], int]:
    """Validate and dedupe ``(u, v, w)`` updates (last write wins)."""
    merged: dict[tuple[int, int], int] = {}
    for item in updates:
        try:
            u, v, w = item
        except (TypeError, ValueError):
            raise ValueError(
                f"each update must be a (u, v, weight) triple, got {item!r}"
            )
        u, v, w = int(u), int(v), int(w)
        if u == v:
            raise ValueError(f"self-loop update ({u}, {v}) is not supported")
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(
                f"update endpoint out of range [0, {n}): ({u}, {v})"
            )
        if not -INF < w <= INF:
            raise ValueError(f"update weight {w} out of range")
        merged[(u, v)] = w
    if not merged:
        raise ValueError("no edge updates given")
    return merged


def apply_edge_updates(
    session,
    weights: np.ndarray,
    updates,
    *,
    directed: bool | None = None,
    artifact: ClosureArtifact | None = None,
    force_rebuild: bool = False,
) -> DeltaReport:
    """Maintain the session's resident closure under edge updates.

    Args:
        session: an :class:`~repro.engine.EngineSession` bound to min-plus
            with resident state seeded (a fresh build, or an artifact
            re-hydrated via :meth:`ClosureArtifact.resident_arrays`).
        weights: the clique-padded ``(N, N)`` weight matrix the resident
            closure was built from; updated **in place**.
        updates: iterable of ``(u, v, new_weight)`` triples;
            ``new_weight = INF`` deletes the edge.  Duplicate edges keep
            the last write.
        directed: edge orientation; defaults to the artifact's, else
            ``False`` (undirected updates write both triangle entries).
        artifact: when given (opened ``writable=True``), the touched block
            rows are rewritten and the manifest generation is bumped.
        force_rebuild: run the rebuild arm even for pure decreases (the
            equivalence tests' baseline).

    Returns a :class:`DeltaReport`; the fast arm runs iff every update is
    a decrease/insertion.  Values after either arm are identical
    edge-for-edge (property-tested); only the round bill differs.
    """
    state = session.resident
    if state is None:
        raise RuntimeError(
            "session has no resident closure; seed_resident/resident_closure "
            "(or ClosureArtifact.resident_arrays) first"
        )
    if getattr(session.algebra, "name", None) != MIN_PLUS.name:
        raise ValueError(
            "delta maintenance is defined for the min-plus closure; "
            f"session is bound to {getattr(session.algebra, 'name', '?')!r}"
        )
    big_n = session.n
    weights = np.asarray(weights)
    if weights.shape != (big_n, big_n):
        raise ValueError(
            f"weights must be clique-padded {big_n} x {big_n}, "
            f"got {weights.shape}"
        )
    if directed is None:
        directed = artifact.directed if artifact is not None else False
    n = artifact.n if artifact is not None else big_n
    merged = _normalise_updates(updates, n)

    increases = [
        (u, v, w) for (u, v), w in merged.items() if w > weights[u, v]
    ]
    # Write the updates into the weight matrix (both triangle entries for
    # undirected graphs -- the closure is over the symmetric matrix).
    weight_rows: set[int] = set()
    for (u, v), w in merged.items():
        weights[u, v] = w
        weight_rows.add(u)
        if not directed:
            weights[v, u] = w
            weight_rows.add(v)

    dirty = np.unique(
        np.array([e for uv in merged for e in uv], dtype=np.int64)
    )
    if increases or force_rebuild:
        reason = (
            "forced"
            if force_rebuild and not increases
            else f"{len(increases)} weight increase(s)/deletion(s)"
        )
        report = _rebuild(session, weights, len(merged), dirty.size, reason)
        touched_rows = np.arange(n, dtype=np.int64)
    else:
        report, touched_rows = _delta(session, weights, dirty, len(merged))
    if artifact is not None:
        state = session.resident
        artifact.commit_update(
            dist=state.dist,
            next_hop=state.next_hop,
            weights=weights,
            rows=touched_rows,
            weight_rows=np.array(sorted(weight_rows), dtype=np.int64),
            report=report.as_dict(),
        )
        report.generation = artifact.generation
    return report


def _rebuild(
    session, weights: np.ndarray, updates: int, dirty: int, reason: str
) -> DeltaReport:
    """The fallback arm: full resident re-closure from the new weights."""
    mark = session.meter.snapshot()
    session.seed_resident(weights)

    def check_diagonal(step: int, accum: np.ndarray) -> None:
        if np.any(np.diag(accum) < 0):
            raise NegativeCycleError(
                "negative-weight cycle detected during delta rebuild"
            )

    session.resident_closure(on_step=check_diagonal, phase="serve/delta-rebuild")
    return DeltaReport(
        mode="rebuild",
        updates=updates,
        dirty=dirty,
        rounds=session.meter.rounds_since(mark),
        improved=-1,
        rebuild_reason=reason,
    )


def _delta(
    session, weights: np.ndarray, dirty: np.ndarray, updates: int
) -> tuple[DeltaReport, np.ndarray]:
    """The fast arm: hub closure + two strip products, O(s)-row rounds."""
    state = session.resident
    dist = state.dist
    hops = state.next_hop
    clique = session.clique
    big_n = session.n
    s = int(dirty.size)
    mark = session.meter.snapshot()

    # --- round-billed part: two row broadcasts ----------------------- #
    # Hub seed rows: dirty node x broadcasts H[x, S] = min(D[x, S], W'[x, S])
    # (it owns row x of both the resident closure and the weights).
    hub_rows = np.zeros((big_n, s), dtype=np.int64)
    dist_sub = dist[np.ix_(dirty, dirty)]
    w_sub = weights[np.ix_(dirty, dirty)]
    seed_direct = w_sub < dist_sub
    hub_rows[dirty] = np.where(seed_direct, w_sub, dist_sub)
    widths = np.zeros(big_n, dtype=np.int64)
    widths[dirty] = block_widths(hub_rows[dirty], clique.word_bits)
    shared_hub = clique.broadcast_rows(
        hub_rows, widths=[int(w) for w in widths], phase="serve/delta/hub-rows"
    )
    # Dirty distance rows: dirty node x broadcasts its closure row D[x, :].
    row_payload = np.zeros((big_n, big_n), dtype=np.int64)
    row_payload[dirty] = dist[dirty]
    widths = np.zeros(big_n, dtype=np.int64)
    widths[dirty] = block_widths(row_payload[dirty], clique.word_bits)
    shared_rows = clique.broadcast_rows(
        row_payload, widths=[int(w) for w in widths],
        phase="serve/delta/dist-rows",
    )
    dirty_rows = np.array(shared_rows[dirty])  # (s, N) on every node

    # --- node-local part: replicated s x s hub closure ---------------- #
    # Floyd-Warshall on the broadcast seed, tracking each entry's first
    # waypoint and whether its first segment is the direct updated edge
    # (vs an old shortest path) -- that pair drives the routing update.
    hub = np.array(shared_hub[dirty])  # (s, s)
    waypoint = np.tile(np.arange(s, dtype=np.int64), (s, 1))
    first_direct = seed_direct.copy()
    for m in range(s):
        alt = saturating_add(hub[:, m][:, None], hub[m, :][None, :])
        better = alt < hub
        if better.any():
            hub = np.where(better, alt, hub)
            waypoint = np.where(better, waypoint[:, m][:, None], waypoint)
            first_direct = np.where(
                better, first_direct[:, m][:, None], first_direct
            )
    if np.any(np.diag(hub) < 0):
        raise NegativeCycleError(
            "edge update created a negative-weight cycle"
        )

    # --- strip products: the bounded batched kernel calls ------------- #
    cand, wx, wy = strip_product_with_witness(dist[:, dirty], hub, dirty_rows)
    if np.any(np.diagonal(cand) < 0):
        raise NegativeCycleError(
            "edge update created a negative-weight cycle"
        )
    improved = MIN_PLUS.improves(cand, dist)
    rows, cols = np.nonzero(improved)
    if rows.size:
        y_idx = wy[rows, cols]
        x_idx = wx[rows, y_idx]
        x_node = dirty[x_idx]
        # Default: the improved path enters the hub set at x != a, so it
        # starts along the old shortest a -> x path.
        new_hops = hops[rows, x_node]
        self_mask = rows == x_node
        if self_mask.any():
            # a == x: the first hub segment decides.  Direct updated edge
            # x -> wp makes wp itself the hop; an old-path segment keeps
            # the old route toward wp.
            sx = x_idx[self_mask]
            sy = y_idx[self_mask]
            wp_node = dirty[waypoint[sx, sy]]
            new_hops[self_mask] = np.where(
                first_direct[sx, sy],
                wp_node,
                hops[rows[self_mask], wp_node],
            )
        hops[rows, cols] = new_hops
        dist[rows, cols] = cand[rows, cols]
    state.generation += 1
    report = DeltaReport(
        mode="delta",
        updates=updates,
        dirty=s,
        rounds=session.meter.rounds_since(mark),
        improved=int(rows.size),
    )
    # Rows whose closure entries changed -- what the artifact rewrites.
    return report, np.unique(rows)


__all__ = ["DeltaReport", "apply_edge_updates"]
