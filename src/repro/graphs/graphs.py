"""Graph containers for the congested-clique algorithms.

The model's input convention (paper §1): the graph has one node per clique
node, and node ``v`` initially knows exactly its incident edges -- row ``v``
of the adjacency matrix (and of the weight matrix, for weighted problems).
For directed graphs we follow the standard congested-clique convention that
``v`` knows both its out- and in-edges.

A :class:`Graph` stores the full matrices for the simulator's convenience;
algorithms must only access row ``v`` inside node ``v``'s code path (see
DESIGN.md "honesty notes").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import INF


@dataclass
class Graph:
    """A simple graph (no self-loops, no multi-edges), possibly weighted.

    Attributes:
        n: number of nodes (node ids ``0 .. n-1``).
        adjacency: ``(n, n)`` 0/1 ``int64`` matrix; symmetric when
            undirected; zero diagonal.
        directed: orientation flag.
        weights: optional ``(n, n)`` ``int64`` matrix aligned with
            ``adjacency``: ``weights[u, v]`` is the edge weight where
            ``adjacency[u, v] == 1`` and ignored elsewhere.
    """

    n: int
    adjacency: np.ndarray
    directed: bool = False
    weights: np.ndarray | None = field(default=None)

    def __post_init__(self) -> None:
        self.adjacency = np.asarray(self.adjacency, dtype=np.int64)
        if self.adjacency.shape != (self.n, self.n):
            raise ValueError(
                f"adjacency must be {self.n} x {self.n}, got {self.adjacency.shape}"
            )
        if np.any(np.diag(self.adjacency) != 0):
            raise ValueError("self-loops are not supported")
        if not self.directed and not np.array_equal(
            self.adjacency, self.adjacency.T
        ):
            raise ValueError("undirected graph needs a symmetric adjacency matrix")
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=np.int64)
            if self.weights.shape != (self.n, self.n):
                raise ValueError("weights must match the adjacency shape")

    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(
        cls, n: int, edges: list[tuple[int, int]], directed: bool = False
    ) -> "Graph":
        """Build an unweighted graph from an edge list."""
        adj = np.zeros((n, n), dtype=np.int64)
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop ({u}, {v})")
            adj[u, v] = 1
            if not directed:
                adj[v, u] = 1
        return cls(n=n, adjacency=adj, directed=directed)

    @classmethod
    def from_weighted_edges(
        cls,
        n: int,
        edges: list[tuple[int, int, int]],
        directed: bool = False,
    ) -> "Graph":
        """Build a weighted graph from ``(u, v, weight)`` triples."""
        adj = np.zeros((n, n), dtype=np.int64)
        w = np.zeros((n, n), dtype=np.int64)
        for u, v, weight in edges:
            if u == v:
                raise ValueError(f"self-loop ({u}, {v})")
            adj[u, v] = 1
            w[u, v] = weight
            if not directed:
                adj[v, u] = 1
                w[v, u] = weight
        return cls(n=n, adjacency=adj, directed=directed, weights=w)

    # ------------------------------------------------------------------ #

    @property
    def edge_count(self) -> int:
        """Number of edges (unordered for undirected graphs)."""
        total = int(self.adjacency.sum())
        return total if self.directed else total // 2

    def degrees(self) -> np.ndarray:
        """Out-degrees (row sums); equals degrees for undirected graphs."""
        return self.adjacency.sum(axis=1)

    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbour ids of ``v``."""
        return np.nonzero(self.adjacency[v])[0]

    def weight_matrix(self) -> np.ndarray:
        """The §3.3 weight matrix: ``W[u,u] = 0``, ``INF`` for non-edges.

        Unweighted graphs get unit weights.
        """
        w = np.full((self.n, self.n), INF, dtype=np.int64)
        if self.weights is not None:
            edge = self.adjacency == 1
            w[edge] = self.weights[edge]
        else:
            w[self.adjacency == 1] = 1
        np.fill_diagonal(w, 0)
        return w

    def edges(self) -> list[tuple[int, int]]:
        """Edge list; ``u < v`` canonical form for undirected graphs."""
        if self.directed:
            us, vs = np.nonzero(self.adjacency)
            return list(zip(us.tolist(), vs.tolist()))
        us, vs = np.nonzero(np.triu(self.adjacency))
        return list(zip(us.tolist(), vs.tolist()))

    def max_abs_weight(self) -> int:
        """Largest absolute edge weight (1 for unweighted graphs)."""
        if self.weights is None:
            return 1 if self.edge_count else 0
        edge = self.adjacency == 1
        if not edge.any():
            return 0
        return int(np.max(np.abs(self.weights[edge])))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "directed" if self.directed else "undirected"
        weighted = "weighted" if self.weights is not None else "unweighted"
        return f"Graph(n={self.n}, m={self.edge_count}, {kind}, {weighted})"


__all__ = ["Graph"]
