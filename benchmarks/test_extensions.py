"""Extension benchmarks: bottleneck APSP, k-path, components, and the
broadcast-clique separation (paper §4, Corollary 24).

These back the DESIGN.md extension inventory: the semiring engine is
generic (max-min), the colour-coding machinery transfers to paths, Boolean
closure yields components, and the broadcast model provably cannot keep up.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clique import CongestedClique
from repro.clique.broadcast_clique import (
    BroadcastCongestedClique,
    broadcast_clique_matmul,
)
from repro.distances import apsp_bottleneck, bottleneck_reference
from repro.distances.components import components_reference, connected_components
from repro.graphs import gnp_random_graph, planted_cycle_graph, random_weighted_digraph
from repro.matmul.semiring3d import semiring_matmul
from repro.subgraphs import detect_k_path

from .conftest import run_once


@pytest.mark.parametrize("n", [27, 64, 125])
def test_bottleneck_apsp(benchmark, n):
    g = random_weighted_digraph(n, 0.3, 50, seed=n)

    def run():
        return apsp_bottleneck(g)

    result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = result.rounds
    assert np.array_equal(result.value, bottleneck_reference(g))


@pytest.mark.parametrize("n", [16, 49, 100])
def test_connected_components(benchmark, n):
    g = gnp_random_graph(n, 2.0 / n, seed=n)

    def run():
        return connected_components(g)

    result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = result.rounds
    benchmark.extra_info["components"] = result.extras["component_count"]
    assert np.array_equal(result.value, components_reference(g))


@pytest.mark.parametrize("n", [16, 49])
def test_k_path_detection(benchmark, n):
    g = planted_cycle_graph(n, 6, seed=n, extra_edge_prob=0.4)

    def run():
        return detect_k_path(g, 4, trials=2, rng=np.random.default_rng(0))

    result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = result.rounds


@pytest.mark.parametrize("n", [27, 64, 125])
def test_broadcast_clique_separation(benchmark, n):
    """Corollary 24, demonstrated: unicast O(n^{1/3}) vs broadcast Theta(n)."""
    rng = np.random.default_rng(n)
    s = rng.integers(0, 2, (n, n), dtype=np.int64)
    t = rng.integers(0, 2, (n, n), dtype=np.int64)

    def run():
        bc = BroadcastCongestedClique(n)
        broadcast_clique_matmul(bc, s, t)
        unicast = CongestedClique(n)
        semiring_matmul(unicast, s, t)
        return bc.rounds, unicast.rounds

    bc_rounds, unicast_rounds = run_once(benchmark, run)
    benchmark.extra_info["broadcast_rounds"] = bc_rounds
    benchmark.extra_info["unicast_rounds"] = unicast_rounds
    assert bc_rounds >= n
    assert unicast_rounds < bc_rounds
