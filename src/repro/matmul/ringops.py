"""Ring operations the bilinear clique algorithm is generic over.

Lemma 10 holds "over any ring R" with a ``b / log n`` width factor for
``b``-bit ring elements.  The two rings the paper uses:

* the **integers** (triangle/4-cycle counting, Seidel, Boolean products via
  thresholding) -- entries are scalars;
* the **capped polynomial ring** ``Z[X]`` of Lemma 18 (distance products with
  small entries) -- entries are coefficient vectors, carried as a trailing
  array axis.

A :class:`RingOps` instance tells the engine how to multiply assembled block
matrices and how many words a shipped entry costs; linear-combination steps
are plain tensor contractions and need no dispatch.
"""

from __future__ import annotations

import numpy as np

from repro.algebra.polynomial import poly_matmul, poly_matmul_batch
from repro.clique.messages import words_for_value


class RingOps:
    """Interface: local block product + honest per-entry word widths."""

    #: registry name (sharded-executor workers resolve rings by name).
    name: str = "abstract"

    #: number of trailing array axes an entry occupies (0 for scalars).
    trailing_axes: int = 0

    def matmul(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def matmul_batch(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Batched block product over a leading batch axis.

        Semantically ``stack([matmul(x[b], y[b]) for b])`` with identical
        values.  Every concrete ring overrides this with a vectorised
        batch-axis kernel (one fused call per executor step); this generic
        loop remains only as the reference fallback for third-party rings
        and as the baseline the equivalence tests pin the kernels against.
        """
        return np.stack(
            [self.matmul(x[b], y[b]) for b in range(np.asarray(x).shape[0])]
        )

    def out_trailing(self, x: np.ndarray, y: np.ndarray) -> tuple[int, ...]:
        """Trailing (ring-axis) shape of a product of ``x`` and ``y`` blocks.

        Lets the executor pre-allocate shared output buffers without
        computing a probe product (the polynomial ring widens its degree
        axis under convolution).
        """
        return ()

    def entry_words(self, arr: np.ndarray, word_bits: int) -> int:
        """Words per entry when shipping (a sub-tensor of) ``arr``."""
        raise NotImplementedError

    def array_words(self, arr: np.ndarray, word_bits: int) -> int:
        """Total words for shipping ``arr``."""
        arr = np.asarray(arr)
        entries = arr.size
        for _ in range(self.trailing_axes):
            entries //= arr.shape[-1] if arr.shape[-1] else 1
        if entries == 0:
            return 0
        return entries * self.entry_words(arr, word_bits)


class IntegerRingOps(RingOps):
    """Plain integer matrices (``int64``)."""

    name = "integer"
    trailing_axes = 0

    def matmul(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return x @ y

    def matmul_batch(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return np.matmul(x, y)

    def entry_words(self, arr: np.ndarray, word_bits: int) -> int:
        arr = np.asarray(arr)
        max_abs = int(np.max(np.abs(arr))) if arr.size else 0
        return words_for_value(max_abs, word_bits)


class PolynomialRingOps(RingOps):
    """Capped-degree polynomial matrices: shape ``(r, c, D)`` tensors.

    An entry is ``D`` integer coefficients, so it costs ``D *
    words(coefficient)`` words -- the explicit ``O(M)``-factor blow-up that
    Lemma 18's round bound charges.
    """

    name = "polynomial"
    trailing_axes = 1

    def matmul(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return poly_matmul(x, y)

    def matmul_batch(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return poly_matmul_batch(x, y)

    def out_trailing(self, x: np.ndarray, y: np.ndarray) -> tuple[int, ...]:
        # Convolution of degree-(Da-1) and degree-(Db-1) polynomials.
        return (np.asarray(x).shape[-1] + np.asarray(y).shape[-1] - 1,)

    def entry_words(self, arr: np.ndarray, word_bits: int) -> int:
        arr = np.asarray(arr)
        max_abs = int(np.max(np.abs(arr))) if arr.size else 0
        return arr.shape[-1] * words_for_value(max_abs, word_bits)


#: Shared singleton instances.
INTEGER_RING = IntegerRingOps()
POLYNOMIAL_RING = PolynomialRingOps()

_RINGS_BY_NAME: dict[str, RingOps] = {
    r.name: r for r in (INTEGER_RING, POLYNOMIAL_RING)
}


def get_ring(name: str) -> RingOps:
    """Look a ring singleton up by ``name`` (sharded-executor workers)."""
    try:
        return _RINGS_BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown ring {name!r} (known: {sorted(_RINGS_BY_NAME)})"
        ) from None


__all__ = [
    "RingOps",
    "IntegerRingOps",
    "PolynomialRingOps",
    "INTEGER_RING",
    "POLYNOMIAL_RING",
    "get_ring",
]
